package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// smallArgs keeps CLI tests fast: a few dozen scenarios, no replay.
var smallArgs = []string{"-seeds", "25", "-crashes", "2"}

func runExplore(t *testing.T, extra ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(append(append([]string{}, smallArgs...), extra...), &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestCleanSweepExitsZero(t *testing.T) {
	code, out, errOut := runExplore(t, "-j", "2")
	if code != 0 {
		t.Fatalf("exit %d, stdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	if !strings.Contains(out, "no divergences") {
		t.Errorf("missing clean-sweep summary:\n%s", out)
	}
	if !strings.Contains(out, "explored 25 scenarios") {
		t.Errorf("missing scenario count:\n%s", out)
	}
}

func TestOutputDeterministicAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	var files []string
	var outs []string
	for i, j := range []string{"1", "4"} {
		f := filepath.Join(dir, "seeds"+j+".json")
		code, out, errOut := runExplore(t, "-j", j, "-out", f)
		if code != 0 {
			t.Fatalf("-j %s: exit %d, stderr:\n%s", j, code, errOut)
		}
		files = append(files, f)
		outs = append(outs, out)
		_ = i
	}
	a, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(files[1])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("-out files differ between -j 1 and -j 4:\n%s\nvs\n%s", a, b)
	}
	if outs[0] != outs[1] {
		t.Errorf("stdout differs between -j 1 and -j 4")
	}
	if !strings.Contains(string(a), "\"master\": 1") {
		t.Errorf("report JSON missing master seed:\n%s", a)
	}
}

func TestPooledOutputByteIdentical(t *testing.T) {
	// -pool is a pure optimization: the report, the -out file and the
	// stdout summary must be byte-identical with pooling on and off.
	dir := t.TempDir()
	var files, outs []string
	for _, cfg := range [][]string{
		{"-j", "2", "-pool=true"},
		{"-j", "2", "-pool=false"},
		{"-j", "1", "-pool=false"},
	} {
		f := filepath.Join(dir, "seeds"+strings.Join(cfg, "")+".json")
		code, out, errOut := runExplore(t, append(cfg, "-out", f)...)
		if code != 0 {
			t.Fatalf("%v: exit %d, stderr:\n%s", cfg, code, errOut)
		}
		files = append(files, f)
		outs = append(outs, out)
	}
	first, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(files); i++ {
		js, err := os.ReadFile(files[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, js) {
			t.Errorf("report %d differs from pooled report:\n%s\nvs\n%s", i, js, first)
		}
		if outs[i] != outs[0] {
			t.Errorf("stdout %d differs from pooled stdout", i)
		}
	}
}

func TestLangFilter(t *testing.T) {
	dir := t.TempDir()
	f := filepath.Join(dir, "seeds.json")
	code, _, errOut := runExplore(t, "-lang", "WEC_COUNT", "-out", f)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut)
	}
	js, err := os.ReadFile(f)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(js), "WEC_COUNT") {
		t.Errorf("filtered sweep never ran WEC_COUNT:\n%s", js)
	}
	for _, other := range []string{"LIN_REG", "SC_REG", "LIN_LED", "SC_LED", "EC_LED", "SEC_COUNT"} {
		if strings.Contains(string(js), other) {
			t.Errorf("filtered sweep ran %s:\n%s", other, js)
		}
	}
}

func TestUnknownLangRejected(t *testing.T) {
	code, _, errOut := runExplore(t, "-lang", "NO_SUCH")
	if code != 2 {
		t.Fatalf("unknown language exited %d, want 2", code)
	}
	if !strings.Contains(errOut, "NO_SUCH") {
		t.Errorf("no diagnostic for the unknown language: %s", errOut)
	}
}

func TestReplaySpec(t *testing.T) {
	var stdout, stderr bytes.Buffer
	spec := "drv1:WEC_COUNT/exact:n=3:seed=7:pol=random:steps=2600"
	code := run([]string{"-replay", spec}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("replay exited %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{spec, "digest:", "no divergences"} {
		if !strings.Contains(out, want) {
			t.Errorf("replay output missing %q:\n%s", want, out)
		}
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-replay", "garbage"}, &stdout, &stderr); code != 2 {
		t.Errorf("malformed replay spec exited %d, want 2", code)
	}
}

func TestProgressGoesToStderrOnly(t *testing.T) {
	code, out, errOut := runExplore(t, "-j", "2", "-progress")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if strings.Contains(out, "[") {
		t.Error("progress lines leaked into stdout")
	}
	if got := strings.Count(errOut, "\n"); got != 25 {
		t.Errorf("expected 25 progress lines on stderr, got %d", got)
	}
}

func TestHelpExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-h"}, &stdout, &stderr); code != 0 {
		t.Errorf("-h exited %d, want 0", code)
	}
	if !strings.Contains(stderr.String(), "Usage of drvexplore") {
		t.Errorf("no usage text on stderr: %s", stderr.String())
	}
}

func TestBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag exited %d, want 2", code)
	}
}
