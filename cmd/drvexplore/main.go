// Command drvexplore fuzzes the monitoring stack beyond Table 1's curated
// executions: it generates seeded random scenarios — random schedules,
// random crash schedules, random behaviours — runs the corresponding
// monitors, and differentially checks every verdict stream against the
// ground-truth oracles. Divergent scenarios are shrunk to minimal
// reproducers and reported as one-line seed specs.
//
// Three scenario families exist. The language family (-family lang, the
// default) replays labelled adversary sources for the seven Table 1
// languages. The object family (-family obj) runs the real concurrent
// implementations of internal/sut — queues, stacks, registers, counters,
// ledgers, in correct and seeded-bug variants — under random workloads
// through the timed adversary and the Figure 8 predictive monitor, and
// judges the exhibited histories with the internal/check oracles (and, on
// small histories, the brute-force reference checkers). Schedules that
// expose a seeded bug are reported (and shrunk) as bug findings; they
// exit 0 — finding them is the point — while stack divergences exit 1.
//
// The message-passing family (-family msg, spec grammar drv3) runs objects
// emulated over asynchronous message passing — the ABD register and the
// snapshot-counter and coordinator-consensus walks built on it — on a
// deterministic seeded network with per-scenario delivery order (-net
// fifo,lifo,random,starve), reordering and message loss, plus the usual
// crash schedules. The emulated object's history is judged with the same
// oracles, and the same bug-versus-divergence split applies to its seeded
// emulation bugs (a read that skips its write-back, a lost increment, an
// echoing coordinator).
//
// With -corpus the sweep is coverage-guided: a directory of one-line seed
// specs is loaded, a -mutate-frac share of the budget mutates those seeds
// instead of drawing fresh random specs, and scenarios that reach a novel
// coverage signature are saved back as new seeds. Corpus entries keep their
// family and object even when the -family/-obj/-impl filters would not
// generate them fresh, so keep corpora per family.
//
// The sweep is deterministic: the same flags (including the same corpus
// contents) produce a byte-identical report (and -out file) for every
// worker count.
//
// Usage:
//
//	drvexplore [-seeds k] [-master m] [-j workers] [-family lang,obj,msg]
//	           [-lang L1,L2] [-obj O1,O2] [-impl I1,I2] [-net N1,N2]
//	           [-crashes c] [-max-steps s] [-pool] [-incremental] [-replay-check]
//	           [-no-shrink] [-progress] [-stage-stats]
//	           [-corpus dir] [-mutate-frac f] [-corpus-save]
//	           [-out seeds.json] [-cpuprofile f]
//	drvexplore -replay "drv1:WEC_COUNT/exact:n=3:seed=7:pol=random:steps=2600"
//	drvexplore -replay "drv2:obj/queue/lifo:n=2:seed=7:pol=random:steps=900:ops=4:mb=0.5"
//	drvexplore -replay "drv3:msg/register/abd:n=3:seed=7:pol=random:steps=2000:ops=4:mb=0.5:net=lifo"
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"slices"
	"sort"
	"strings"
	"time"

	"github.com/drv-go/drv/internal/explore"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("drvexplore", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seeds := fs.Int("seeds", 200, "number of random scenarios to run")
	master := fs.Int64("master", 1, "master seed; scenario i derives its own stream from (master, i)")
	var workers int
	fs.IntVar(&workers, "j", runtime.NumCPU(), "worker-pool size; 1 runs scenarios sequentially")
	fs.IntVar(&workers, "parallel", runtime.NumCPU(), "alias for -j")
	family := fs.String("family", "", "comma-separated scenario families: lang, obj, msg (default: lang)")
	langs := fs.String("lang", "", "comma-separated language filter (default: all seven)")
	objects := fs.String("obj", "", "comma-separated object filter for -family obj/msg (default: all)")
	impls := fs.String("impl", "", "comma-separated implementation filter for -family obj/msg (default: all)")
	nets := fs.String("net", "", "comma-separated network delivery orders for -family msg: fifo, lifo, random, starve (default: all)")
	crashes := fs.Int("crashes", 2, "max crashes per scenario (0 disables crash injection)")
	maxSteps := fs.Int("max-steps", 0, "cap on a scenario's scheduler step bound (0 = family defaults)")
	replayCheck := fs.Bool("replay-check", false, "re-execute every scenario and flag digest mismatches (doubles the work)")
	noShrink := fs.Bool("no-shrink", false, "report divergent scenarios without minimizing them")
	progress := fs.Bool("progress", false, "stream per-scenario completion to stderr")
	out := fs.String("out", "", "write the JSON report to this file")
	replay := fs.String("replay", "", "replay a single seed spec and print its outcome (ignores sweep flags)")
	corpusDir := fs.String("corpus", "", "seed-corpus directory: load it before the sweep, save novel-signature specs back after")
	mutateFrac := fs.Float64("mutate-frac", 0.5, "fraction of the budget spent mutating corpus entries (needs -corpus; 0 = blind sweep)")
	corpusSave := fs.Bool("corpus-save", true, "with -corpus, write novel entries back to the directory after the sweep")
	pool := fs.Bool("pool", true, "reuse one pooled runtime+session per worker (output is byte-identical either way)")
	incremental := fs.Bool("incremental", true, "check verdict prefixes with the incremental witness search (output is byte-identical either way)")
	stageStats := fs.Bool("stage-stats", false, "profile per-stage wall time and allocations (adds a stages map to the report and summary; timing is nondeterministic)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *replay != "" {
		return replayOne(*replay, stdout, stderr)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "drvexplore: cpuprofile: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "drvexplore: cpuprofile: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}

	opts := explore.Options{
		Master:        *master,
		Scenarios:     *seeds,
		Workers:       workers,
		Gen:           explore.GenConfig{MaxCrashes: *crashes, MaxSteps: *maxSteps},
		Replay:        *replayCheck,
		Shrink:        !*noShrink,
		Unpooled:      !*pool,
		Unincremental: !*incremental,
		StageStats:    *stageStats,
		MutateFrac:    *mutateFrac,
	}
	if *family != "" {
		opts.Gen.Families = strings.Split(*family, ",")
	}
	if *nets != "" {
		// The network knob only shapes message-family scenarios: bare -net
		// implies -family msg, and an explicit family set that omits msg
		// would silently ignore it — a usage error.
		if *family == "" {
			opts.Gen.Families = []string{explore.FamMsg}
		} else if !slices.Contains(opts.Gen.Families, explore.FamMsg) {
			fmt.Fprintf(stderr, "drvexplore: -net needs the msg family (got -family %s)\n", *family)
			return 2
		}
		opts.Gen.NetOrders = strings.Split(*nets, ",")
	}
	if *objects != "" || *impls != "" {
		// The object filters only shape object- and message-family
		// scenarios: bare -obj/-impl implies -family obj, and an explicit
		// family set without obj or msg would silently ignore them — a
		// usage error.
		if *family == "" && *nets == "" {
			opts.Gen.Families = []string{explore.FamObj}
		} else if !slices.Contains(opts.Gen.Families, explore.FamObj) &&
			!slices.Contains(opts.Gen.Families, explore.FamMsg) {
			fmt.Fprintf(stderr, "drvexplore: -obj/-impl need the obj or msg family (got -family %s)\n", *family)
			return 2
		}
	}
	if *langs != "" {
		opts.Gen.Langs = strings.Split(*langs, ",")
	}
	if *objects != "" {
		opts.Gen.Objects = strings.Split(*objects, ",")
	}
	if *impls != "" {
		opts.Gen.Impls = strings.Split(*impls, ",")
	}
	if *corpusDir != "" {
		corpus, err := explore.LoadCorpus(*corpusDir)
		if err != nil {
			fmt.Fprintf(stderr, "drvexplore: %v\n", err)
			return 2
		}
		opts.Corpus = corpus
	}
	if *progress {
		done := 0
		opts.OnScenario = func(i int, o *explore.Outcome) {
			done++
			status := "ok"
			if len(o.Divergences) > 0 {
				status = "DIVERGED"
			}
			fmt.Fprintf(stderr, "[%4d/%d] %-60s %s\n", done, *seeds, o.Spec.String(), status)
		}
	}

	rep, err := explore.Explore(opts)
	if err != nil {
		fmt.Fprintf(stderr, "drvexplore: %v\n", err)
		return 2
	}

	fmt.Fprintf(stdout, "explored %d scenarios (master seed %d): %d crashed runs, %d steps, %d verdicts\n",
		rep.Scenarios, rep.Master, rep.Crashed, rep.TotalSteps, rep.TotalVerdicts)
	if opts.Corpus != nil {
		fmt.Fprintf(stdout, "coverage: %d distinct signatures (%d mutated scenarios from %d corpus seeds, %d novel seeds found)\n",
			rep.Coverage, rep.Mutated, rep.CorpusSeeds, rep.CorpusNew)
	} else {
		fmt.Fprintf(stdout, "coverage: %d distinct signatures\n", rep.Coverage)
	}
	fmt.Fprintf(stdout, "checks run: %s\n", countList(rep.Checks))
	fmt.Fprintf(stdout, "checks skipped: %s\n", countList(rep.Skipped))
	if *stageStats && len(rep.Stages) > 0 {
		fams := make([]string, 0, len(rep.Stages))
		for fam := range rep.Stages {
			fams = append(fams, fam)
		}
		sort.Strings(fams)
		for _, fam := range fams {
			b := rep.Stages[fam]
			fmt.Fprintf(stdout, "stages[%s]: generate %s | execute %s | monitor %s | check %s\n",
				fam, stageCost(b.Generate), stageCost(b.Execute), stageCost(b.Monitor), stageCost(b.Check))
		}
	}
	if len(rep.ByObject) > 0 {
		fmt.Fprintf(stdout, "objects: %s\n", countList(rep.ByObject))
		fmt.Fprintf(stdout, "bugs: %d scenario(s) exposed bugs in %d implementation(s)\n",
			rep.BugScenarios, len(rep.Bugs))
		for _, b := range rep.Bugs {
			fmt.Fprintf(stdout, "\nBUG %s/%s (%d scenario(s)) %s\n", b.Object, b.Impl, b.Count, b.Spec)
			for _, d := range b.Failures {
				fmt.Fprintf(stdout, "  %-14s %s\n", d.Check+":", d.Detail)
			}
			if b.Shrunk != "" {
				fmt.Fprintf(stdout, "  shrunk to %s (%d steps)\n", b.Shrunk, b.ShrunkSteps)
				for _, d := range b.ShrunkFailures {
					fmt.Fprintf(stdout, "    %-12s %s\n", d.Check+":", d.Detail)
				}
			}
		}
	}
	for _, f := range rep.Failures {
		fmt.Fprintf(stdout, "\nDIVERGENCE %s\n", f.Spec)
		for _, d := range f.Divergences {
			fmt.Fprintf(stdout, "  %-14s %s\n", d.Check+":", d.Detail)
		}
		if f.Shrunk != "" {
			fmt.Fprintf(stdout, "  shrunk to %s (%d steps)\n", f.Shrunk, f.ShrunkSteps)
			for _, d := range f.ShrunkDivergences {
				fmt.Fprintf(stdout, "    %-12s %s\n", d.Check+":", d.Detail)
			}
		}
	}

	// A failed report write is a runtime failure (exit 1, like a failed
	// reproduction), never a usage error, and must not suppress the
	// divergence summary.
	writeFailed := false
	if *out != "" {
		js, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(*out, append(js, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(stderr, "drvexplore: writing report: %v\n", err)
			writeFailed = true
		}
	}
	if opts.Corpus != nil && *corpusSave {
		n, err := opts.Corpus.SaveNew(*corpusDir)
		if err != nil {
			fmt.Fprintf(stderr, "drvexplore: saving corpus: %v\n", err)
			writeFailed = true
		} else if n > 0 {
			fmt.Fprintf(stdout, "saved %d new corpus seed(s) to %s\n", n, *corpusDir)
		}
	}

	if rep.Divergent() {
		fmt.Fprintf(stdout, "\n%d divergent scenario(s)\n", len(rep.Failures))
		return 1
	}
	fmt.Fprintln(stdout, "no divergences")
	if writeFailed {
		return 1
	}
	return 0
}

// replayOne executes a single seed spec and prints its outcome.
func replayOne(specLine string, stdout, stderr io.Writer) int {
	s, err := explore.ParseSpec(specLine)
	if err != nil {
		fmt.Fprintf(stderr, "drvexplore: %v\n", err)
		return 2
	}
	out, err := explore.Execute(s)
	if err != nil {
		fmt.Fprintf(stderr, "drvexplore: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "spec:     %s\n", out.Spec)
	fmt.Fprintf(stdout, "monitor:  %s\n", out.Monitor)
	if out.Spec.Fam() == explore.FamLang {
		fmt.Fprintf(stdout, "label:    in-language=%v\n", out.Label)
	} else {
		fmt.Fprintf(stdout, "label:    correct-impl=%v\n", out.Label)
	}
	fmt.Fprintf(stdout, "steps:    %d\nverdicts: %d (%d NO)\ndigest:   %s\n", out.Steps, out.Verdicts, out.NOs, out.Digest)
	fmt.Fprintf(stdout, "checks:   ran %s; skipped %s\n", strings.Join(out.Ran, ","), strings.Join(out.Skipped, ","))
	// Exposed implementation bugs are findings about the system under test,
	// not failures of the monitoring stack: report them, exit 0.
	for _, d := range out.OracleFailures {
		fmt.Fprintf(stdout, "BUG %-14s %s\n", d.Check+":", d.Detail)
	}
	if len(out.Divergences) == 0 {
		fmt.Fprintln(stdout, "no divergences")
		return 0
	}
	for _, d := range out.Divergences {
		fmt.Fprintf(stdout, "DIVERGENCE %-14s %s\n", d.Check+":", d.Detail)
	}
	return 1
}

// stageCost renders one stage's aggregate as "<wall>/<allocs> allocs".
func stageCost(c explore.StageCost) string {
	return fmt.Sprintf("%s/%d allocs", time.Duration(c.Nanos).Round(time.Microsecond), c.Allocs)
}

// countList renders a count map deterministically as "name=count
// name=count": known check names first in CheckNames order, then any other
// keys sorted — a report from a newer explorer must not have its counters
// silently dropped. "none" when the map contributes nothing.
func countList(m map[string]int) string {
	parts := make([]string, 0, len(m))
	known := map[string]bool{}
	for _, name := range explore.CheckNames() {
		known[name] = true
		if c, ok := m[name]; ok {
			parts = append(parts, fmt.Sprintf("%s=%d", name, c))
		}
	}
	var rest []string
	for name := range m {
		if !known[name] {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	for _, name := range rest {
		parts = append(parts, fmt.Sprintf("%s=%d", name, m[name]))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}
