package monitor

import (
	"errors"
	"fmt"

	"github.com/drv-go/drv/exp/trace"
	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/check"
	imonitor "github.com/drv-go/drv/internal/monitor"
	"github.com/drv-go/drv/internal/sched"
)

// Verdict is a value a monitor process reports in Line 06 of the generic
// algorithm (Figure 1).
type Verdict = trace.Verdict

const (
	// Yes reports the behaviour is (still) considered correct.
	Yes = trace.Yes
	// No reports a violation.
	No = trace.No
	// Maybe reports insufficient information (three-valued monitors, §7).
	Maybe = trace.Maybe
)

// Result is the outcome of a monitored execution: the exhibited history, the
// per-process verdict streams, and the alignment indices relating each
// verdict to the history prefix it judged.
type Result = trace.Result

// Object is a sequential object specification; see the exp/trace package for
// the provided objects (Register, Counter, Queue, Stack, Ledger, …) and the
// interfaces custom objects implement.
type Object = trace.Object

// DefaultMaxSteps bounds an execution when Config.MaxSteps is unset (≤ 0).
// It is far above what any recorded history of reasonable size needs; runs
// normally end when the history is fully replayed.
const DefaultMaxSteps = imonitor.DefaultMaxSteps

// Logic selects which of the paper's monitors judges the history.
type Logic uint8

const (
	// LogicLin is the Figure-8 predictive linearizability monitor V_O; it
	// requires Config.Object.
	LogicLin Logic = iota + 1
	// LogicSC is V_O's sequential-consistency variant (Section 6.2); it
	// requires Config.Object.
	LogicSC
	// LogicWEC is the Figure-5 weak decider for WEC_COUNT (counter
	// histories: inc/read operations).
	LogicWEC
	// LogicSEC is the Figure-9 predictive-weak decider for SEC_COUNT
	// (counter histories).
	LogicSEC
	// LogicECLedger is the best-effort eventually-consistent-ledger monitor
	// (ledger histories: append/get operations). EC_LED is not predictively
	// weakly decidable (Theorem 7.2); the monitor exists to exhibit that
	// impossibility.
	LogicECLedger
)

// String names the logic.
func (l Logic) String() string {
	switch l {
	case LogicLin:
		return "lin"
	case LogicSC:
		return "sc"
	case LogicWEC:
		return "wec"
	case LogicSEC:
		return "sec"
	case LogicECLedger:
		return "ecledger"
	default:
		return fmt.Sprintf("logic(%d)", uint8(l))
	}
}

// Array selects the shared announcement-array implementation the timed
// adversary Aτ uses to build views (Section 6.1).
type Array uint8

const (
	// ArrayAtomic uses the model's one-step atomic snapshot; views are
	// totally ordered by containment. The zero Config value defaults here.
	ArrayAtomic Array = iota + 1
	// ArrayAADGMS uses the wait-free read/write snapshot protocol.
	ArrayAADGMS
	// ArrayCollect uses a plain collect; views may become incomparable, in
	// which case sketch reconstruction fails (the Section 6.2 caveat).
	ArrayCollect
)

func (a Array) kind() (adversary.ArrayKind, error) {
	switch a {
	case 0, ArrayAtomic:
		return adversary.ArrayAtomic, nil
	case ArrayAADGMS:
		return adversary.ArrayAADGMS, nil
	case ArrayCollect:
		return adversary.ArrayCollect, nil
	default:
		return 0, fmt.Errorf("monitor: unknown array kind %d", uint8(a))
	}
}

// Config describes one monitored replay of a recorded history.
type Config struct {
	// N is the number of monitor processes; it must cover every process
	// mentioned in History.
	N int
	// Object is the sequential specification the history is judged against.
	// Required for LogicLin and LogicSC; ignored by the counter and ledger
	// logics, whose specifications are fixed.
	Object Object
	// Logic selects the monitor.
	Logic Logic
	// History is the recorded well-formed concurrent history to replay
	// (typically Recorder.History()).
	History trace.Word
	// Array selects Aτ's announcement array; zero means ArrayAtomic.
	Array Array
	// MaxSteps bounds the scheduler; ≤ 0 means DefaultMaxSteps.
	MaxSteps int
}

func (cfg *Config) validate() (adversary.ArrayKind, error) {
	if cfg.N < 1 {
		return 0, fmt.Errorf("monitor: N must be ≥ 1, got %d", cfg.N)
	}
	kind, err := cfg.Array.kind()
	if err != nil {
		return 0, err
	}
	switch cfg.Logic {
	case LogicLin, LogicSC:
		if cfg.Object == nil {
			return 0, fmt.Errorf("monitor: logic %v requires an Object", cfg.Logic)
		}
	case LogicWEC, LogicSEC, LogicECLedger:
	default:
		return 0, fmt.Errorf("monitor: unknown logic %d", uint8(cfg.Logic))
	}
	if err := trace.WellFormed(cfg.History); err != nil {
		return 0, fmt.Errorf("monitor: %w", err)
	}
	if p := cfg.History.Procs(); p > cfg.N {
		return 0, fmt.Errorf("monitor: history mentions %d processes but N is %d", p, cfg.N)
	}
	return kind, nil
}

// Session replays histories through pooled monitor machinery: the scheduler
// runtime, checker state, and result buffers are reused across Run calls, so
// the steady state of a long-lived monitoring loop is allocation-free. A
// Session is not safe for concurrent use; use one per goroutine.
type Session struct {
	s *imonitor.Session
}

// NewSession returns an empty session; resources are allocated lazily on
// first Run and recycled afterwards.
func NewSession() *Session { return &Session{s: imonitor.NewSession()} }

// Close releases the pooled resources. The session may be reused after
// Close; it just loses its warm state.
func (s *Session) Close() { s.s.Close() }

// ErrTruncated reports that a replay hit Config.MaxSteps before the recorded
// history was fully exhibited: the verdicts cover only a prefix of the
// history. Session.Run returns it wrapped, alongside the partial Result, so
// callers can distinguish an honest partial verdict stream from a complete
// one (match with errors.Is).
var ErrTruncated = errors.New("monitor: replay truncated by MaxSteps before the history drained")

// Run replays cfg.History through the selected monitor and returns the
// verdict stream. The replay is deterministic: the word-cursor adversary
// exhibits exactly the recorded history (Claim 3.1), so the same Config
// yields a byte-identical Result. The returned Result is owned by the
// session and overwritten by the next Run; callers that keep it across runs
// must copy what they need.
//
// When the step bound cuts the replay short, Run returns the partial Result
// together with an error wrapping ErrTruncated; Result.Drained reports the
// same condition (false on a cutoff). All other errors return a nil Result.
func (s *Session) Run(cfg Config) (*Result, error) {
	kind, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	adv := adversary.NewA(cfg.N, adversary.NewScriptSource(cfg.History))
	tau := adversary.NewTimed(cfg.N, adv, kind)
	var m imonitor.Monitor
	switch cfg.Logic {
	case LogicLin:
		m = imonitor.NewLin(cfg.Object, tau, kind)
	case LogicSC:
		m = imonitor.NewSC(cfg.Object, tau, kind)
	case LogicWEC:
		m = imonitor.NewWEC(kind)
	case LogicSEC:
		m = imonitor.NewSEC(tau, kind)
	case LogicECLedger:
		m = imonitor.NewECLed(kind)
	}
	res := s.s.Run(imonitor.Config{
		N:       cfg.N,
		Monitor: m,
		NewService: func(rt *sched.Runtime) (adversary.Service, []int) {
			return tau, []int{adv.Register(rt)}
		},
		MaxSteps: cfg.MaxSteps,
	})
	if !res.Drained {
		maxSteps := cfg.MaxSteps
		if maxSteps <= 0 {
			maxSteps = DefaultMaxSteps
		}
		return res, fmt.Errorf("%w: %d of %d history events exhibited in %d steps (MaxSteps %d)",
			ErrTruncated, len(res.History), len(cfg.History), res.Steps, maxSteps)
	}
	return res, nil
}

// Run replays one history through a dedicated one-shot Session. Workloads
// monitoring many histories should hold a Session and reuse it instead.
func Run(cfg Config) (*Result, error) {
	s := NewSession()
	defer s.Close()
	return s.Run(cfg)
}

// errNotWellFormed wraps offline-check input errors.
var errNotWellFormed = errors.New("monitor: history is not well-formed")

// Linearizable reports whether the history is linearizable with respect to
// the object — the offline ground-truth oracle (a Wing–Gill search), as
// opposed to the online verdict stream of LogicLin.
func Linearizable(obj Object, h trace.Word) (bool, error) {
	if err := trace.WellFormed(h); err != nil {
		return false, fmt.Errorf("%w: %v", errNotWellFormed, err)
	}
	return check.Linearizable(obj, h), nil
}

// SeqConsistent reports whether the history is sequentially consistent with
// respect to the object — the offline ground-truth oracle, as opposed to the
// online verdict stream of LogicSC.
func SeqConsistent(obj Object, h trace.Word) (bool, error) {
	if err := trace.WellFormed(h); err != nil {
		return false, fmt.Errorf("%w: %v", errNotWellFormed, err)
	}
	return check.SeqConsistent(obj, h), nil
}
