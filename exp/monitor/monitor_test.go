package monitor_test

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"github.com/drv-go/drv/exp/monitor"
	"github.com/drv-go/drv/exp/trace"
)

// queueHistory is a small well-formed concurrent queue history: two
// overlapping enqueues and a dequeue observing the first.
func queueHistory() trace.Word {
	return trace.NewB().
		Inv(0, "enq", trace.Int(1)).
		Inv(1, "enq", trace.Int(2)).
		Res(0, "enq", trace.Unit{}).
		Res(1, "enq", trace.Unit{}).
		Op(2, "deq", nil, trace.Int(1)).
		Word()
}

// counterHistory exercises the counter logics: an inc overlapping two reads.
func counterHistory() trace.Word {
	return trace.NewB().
		Inv(0, "inc", nil).
		Op(1, "read", nil, trace.Int(0)).
		Res(0, "inc", trace.Unit{}).
		Op(1, "read", nil, trace.Int(1)).
		Word()
}

// ledgerHistory exercises the ledger logic: an append and a get.
func ledgerHistory() trace.Word {
	return trace.NewB().
		Op(0, "append", trace.Rec("a"), trace.Unit{}).
		Op(1, "get", nil, trace.Seq{"a"}).
		Word()
}

func TestRunAllLogics(t *testing.T) {
	cases := []struct {
		name string
		cfg  monitor.Config
		// exactNO asserts zero NO reports; the weak deciders (wec, sec) may
		// legitimately report transient NOs on finite prefixes, so for them
		// only drainage and verdict presence are checked.
		exactNO bool
	}{
		{"lin", monitor.Config{N: 3, Object: trace.Queue(), Logic: monitor.LogicLin, History: queueHistory()}, true},
		{"sc", monitor.Config{N: 3, Object: trace.Queue(), Logic: monitor.LogicSC, History: queueHistory()}, true},
		{"wec", monitor.Config{N: 2, Logic: monitor.LogicWEC, History: counterHistory()}, false},
		{"sec", monitor.Config{N: 2, Logic: monitor.LogicSEC, History: counterHistory()}, false},
		{"ecledger", monitor.Config{N: 2, Logic: monitor.LogicECLedger, History: ledgerHistory()}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := monitor.Run(tc.cfg)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if !res.Drained {
				t.Fatalf("replay did not drain the history (steps=%d)", res.Steps)
			}
			if res.Procs() != tc.cfg.N {
				t.Fatalf("Procs() = %d, want %d", res.Procs(), tc.cfg.N)
			}
			if tc.exactNO && res.TotalNO() != 0 {
				t.Fatalf("correct history got %d NO reports; verdicts %v", res.TotalNO(), res.Verdicts)
			}
			total := 0
			for p := range res.Verdicts {
				total += len(res.Verdicts[p])
			}
			if total == 0 {
				t.Fatal("no verdicts reported")
			}
		})
	}
}

func TestRunFlagsViolation(t *testing.T) {
	// deq returns the second enqueue while the first is still in the queue:
	// not linearizable for any ordering.
	bad := trace.NewB().
		Op(0, "enq", trace.Int(1), trace.Unit{}).
		Op(0, "enq", trace.Int(2), trace.Unit{}).
		Op(1, "deq", nil, trace.Int(2)).
		Word()
	res, err := monitor.Run(monitor.Config{N: 2, Object: trace.Queue(), Logic: monitor.LogicLin, History: bad})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.TotalNO() == 0 {
		t.Fatal("non-linearizable history got no NO report")
	}
	ok, err := monitor.Linearizable(trace.Queue(), bad)
	if err != nil || ok {
		t.Fatalf("Linearizable = %v, %v; want false, nil", ok, err)
	}
	ok, err = monitor.SeqConsistent(trace.Queue(), bad)
	if err != nil || ok {
		t.Fatalf("SeqConsistent = %v, %v; want false, nil", ok, err)
	}
}

func TestRunValidation(t *testing.T) {
	good := queueHistory()
	cases := []struct {
		name string
		cfg  monitor.Config
		want string
	}{
		{"zero procs", monitor.Config{Logic: monitor.LogicLin, Object: trace.Queue(), History: good}, "N must be"},
		{"missing object", monitor.Config{N: 3, Logic: monitor.LogicLin, History: good}, "requires an Object"},
		{"unknown logic", monitor.Config{N: 3, History: good}, "unknown logic"},
		{"unknown array", monitor.Config{N: 3, Logic: monitor.LogicWEC, History: good, Array: 42}, "unknown array"},
		{"too few procs", monitor.Config{N: 1, Logic: monitor.LogicWEC, History: counterHistory()}, "mentions 2 processes"},
		{"ill-formed", monitor.Config{N: 2, Logic: monitor.LogicWEC,
			History: trace.Word{trace.NewRes(0, "read", trace.Int(0))}}, "not well-formed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := monitor.Run(tc.cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want containing %q", err, tc.want)
			}
		})
	}
	for _, h := range []trace.Word{trace.Word{trace.NewRes(0, "read", trace.Int(0))}} {
		if _, err := monitor.Linearizable(trace.Queue(), h); err == nil {
			t.Fatal("Linearizable accepted ill-formed history")
		}
		if _, err := monitor.SeqConsistent(trace.Queue(), h); err == nil {
			t.Fatal("SeqConsistent accepted ill-formed history")
		}
	}
}

// TestSessionReplayDeterministic pins the embedder determinism contract: the
// same history replayed through a reused session, a fresh session, and the
// one-shot Run yields byte-identical results.
func TestSessionReplayDeterministic(t *testing.T) {
	cfg := monitor.Config{N: 3, Object: trace.Queue(), Logic: monitor.LogicLin, History: queueHistory()}

	encode := func(res *monitor.Result) []byte {
		var buf bytes.Buffer
		w := trace.NewWriter(&buf)
		if err := w.WriteWord(res.History); err != nil {
			t.Fatal(err)
		}
		for p := range res.Verdicts {
			for k, v := range res.Verdicts[p] {
				if err := w.WriteVerdict(p, v.String(), res.StepAt[p][k]); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	s := monitor.NewSession()
	defer s.Close()
	res1, err := s.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := encode(res1)
	verdicts := make([][]monitor.Verdict, len(res1.Verdicts))
	for p := range res1.Verdicts {
		verdicts[p] = append([]monitor.Verdict(nil), res1.Verdicts[p]...)
	}

	res2, err := s.Run(cfg) // reused session
	if err != nil {
		t.Fatal(err)
	}
	if got := encode(res2); !bytes.Equal(first, got) {
		t.Fatalf("session reuse changed the result:\n%s\nvs\n%s", first, got)
	}
	if !reflect.DeepEqual(verdicts, res2.Verdicts) {
		t.Fatalf("session reuse changed verdicts: %v vs %v", verdicts, res2.Verdicts)
	}

	res3, err := monitor.Run(cfg) // one-shot path
	if err != nil {
		t.Fatal(err)
	}
	if got := encode(res3); !bytes.Equal(first, got) {
		t.Fatalf("one-shot Run diverged from session run:\n%s\nvs\n%s", first, got)
	}
}

func TestRecorderMisusePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("NewRecorder(0)", func() { monitor.NewRecorder(0) })
	rec := monitor.NewRecorder(2)
	mustPanic("out-of-range Invoke", func() { rec.Invoke(2, "op", nil) })
	mustPanic("Respond without Invoke", func() { rec.Respond(0, nil) })
	rec.Invoke(0, "op", nil)
	mustPanic("double Invoke", func() { rec.Invoke(0, "op", nil) })
	rec.Respond(0, nil)
	if rec.Len() != 2 || rec.Procs() != 2 {
		t.Fatalf("Len=%d Procs=%d after one operation", rec.Len(), rec.Procs())
	}
}

// TestRecorderPendingOperation checks that a history with an in-flight
// operation is still well-formed and monitorable — monitors handle pending
// invocations.
func TestRecorderPendingOperation(t *testing.T) {
	rec := monitor.NewRecorder(2)
	rec.Record(0, "enq", trace.Int(5), func() trace.Value { return trace.Unit{} })
	rec.Invoke(1, "deq", nil) // never responds
	h := rec.History()
	if err := trace.WellFormed(h); err != nil {
		t.Fatalf("pending operation made history ill-formed: %v", err)
	}
	res, err := monitor.Run(monitor.Config{N: 2, Object: trace.Queue(), Logic: monitor.LogicLin, History: h})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalNO() != 0 {
		t.Fatalf("pending-deq history judged NO: %v", res.Verdicts)
	}
}

// TestRunTruncated pins the truncation contract: a replay cut by MaxSteps
// returns the partial Result together with an error wrapping ErrTruncated,
// and Result.Drained is false; the same history with room to finish drains
// cleanly. Regression test for the silently-cut replays drvserve relies on
// reporting honestly.
func TestRunTruncated(t *testing.T) {
	b := trace.NewB()
	for i := 0; i < 200; i++ {
		b.Op(0, "enq", trace.Int(int64(i)), trace.Unit{})
	}
	h := b.Word()

	s := monitor.NewSession()
	defer s.Close()

	res, err := s.Run(monitor.Config{N: 1, Object: trace.Queue(), Logic: monitor.LogicLin, History: h, MaxSteps: 25})
	if err == nil {
		t.Fatal("truncated replay returned no error")
	}
	if !errors.Is(err, monitor.ErrTruncated) {
		t.Fatalf("error %q does not wrap ErrTruncated", err)
	}
	if res == nil {
		t.Fatal("truncated replay returned no partial Result")
	}
	if res.Drained {
		t.Fatal("truncated replay reports Drained")
	}
	if len(res.History) >= len(h) {
		t.Fatalf("truncated replay exhibited %d of %d events", len(res.History), len(h))
	}

	full, err := s.Run(monitor.Config{N: 1, Object: trace.Queue(), Logic: monitor.LogicLin, History: h})
	if err != nil {
		t.Fatalf("unbounded replay: %v", err)
	}
	if !full.Drained {
		t.Fatal("unbounded replay did not drain")
	}
	if len(full.History) != len(h) {
		t.Fatalf("unbounded replay exhibited %d of %d events", len(full.History), len(h))
	}
}
