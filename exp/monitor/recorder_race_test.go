package monitor_test

import (
	"bytes"
	"sync"
	"testing"

	"github.com/drv-go/drv/exp/monitor"
	"github.com/drv-go/drv/exp/trace"
)

// extQueue is a deliberately external queue — a plain mutex-protected slice,
// not an implementation from this module — standing in for the embedder's
// own concurrent data structure.
type extQueue struct {
	mu    sync.Mutex
	items []int64
}

func (q *extQueue) Enq(v int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.items = append(q.items, v)
}

func (q *extQueue) Deq() (int64, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return 0, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// TestRecorderConcurrent drives truly concurrent recorders over the external
// queue (this is the -race tier of the adapter) and then checks the two
// byte-determinism contracts: the recorded history round-trips through the
// exp/trace wire format byte-identically, and replaying the decoded history
// yields exactly the same verdict stream as replaying the original.
func TestRecorderConcurrent(t *testing.T) {
	const procs = 4
	const opsPerProc = 25

	q := &extQueue{}
	rec := monitor.NewRecorder(procs)

	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < opsPerProc; i++ {
				if p%2 == 0 {
					v := int64(p*1000 + i)
					rec.Invoke(p, "enq", trace.Int(v))
					q.Enq(v)
					rec.Respond(p, trace.Unit{})
				} else {
					rec.Invoke(p, "deq", nil)
					v, ok := q.Deq()
					if !ok {
						rec.Respond(p, trace.Empty)
					} else {
						rec.Respond(p, trace.Int(v))
					}
				}
			}
		}(p)
	}
	wg.Wait()

	h := rec.History()
	if len(h) != 2*procs*opsPerProc {
		t.Fatalf("recorded %d events, want %d", len(h), 2*procs*opsPerProc)
	}
	if err := trace.WellFormed(h); err != nil {
		t.Fatalf("concurrent recording produced an ill-formed history: %v", err)
	}

	// Wire round-trip: encode, decode, re-encode — byte-identical.
	encodeWord := func(w trace.Word) []byte {
		var buf bytes.Buffer
		tw := trace.NewWriter(&buf)
		if err := tw.WriteMeta(trace.Meta{N: procs, Note: "recorder race tier"}); err != nil {
			t.Fatal(err)
		}
		if err := tw.WriteWord(w); err != nil {
			t.Fatal(err)
		}
		if err := tw.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first := encodeWord(h)
	decoded, err := trace.Read(bytes.NewReader(first))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !decoded.Word.Equal(h) {
		t.Fatal("decoded history differs from the recorded one")
	}
	if again := encodeWord(decoded.Word); !bytes.Equal(first, again) {
		t.Fatal("encode(decode(encode(h))) != encode(h)")
	}

	// Replay determinism: the recorded history and its wire round-trip
	// produce identical verdict streams.
	replay := func(w trace.Word) []byte {
		res, err := monitor.Run(monitor.Config{
			N:       procs,
			Object:  trace.Queue(),
			Logic:   monitor.LogicLin,
			History: w,
		})
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		if !res.Drained {
			t.Fatalf("replay did not drain (steps=%d)", res.Steps)
		}
		var buf bytes.Buffer
		tw := trace.NewWriter(&buf)
		if err := tw.WriteWord(res.History); err != nil {
			t.Fatal(err)
		}
		for p := range res.Verdicts {
			for k, v := range res.Verdicts[p] {
				if err := tw.WriteVerdict(p, v.String(), res.StepAt[p][k]); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := tw.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := replay(h)
	b := replay(decoded.Word)
	if !bytes.Equal(a, b) {
		t.Fatal("replaying the wire round-trip diverged from replaying the original history")
	}

	// The mutex-protected queue really is linearizable; the online monitor
	// and the offline oracle must agree on that.
	ok, err := monitor.Linearizable(trace.Queue(), h)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("offline oracle rejected the mutex queue history")
	}
}
