package monitor_test

import (
	"strings"
	"testing"

	"github.com/drv-go/drv/exp/monitor"
	"github.com/drv-go/drv/exp/trace"
)

// TestRecordPanicAborts pins the panic contract of Recorder.Record: a
// panicking operation body re-panics, but the recorder stays consistent —
// the invocation remains in the history as a pending operation (the crash
// shape), the history stays well-formed and replayable, other processes keep
// recording, and further use of the aborted process fails with the abort's
// provenance instead of a misleading "already has a pending operation".
func TestRecordPanicAborts(t *testing.T) {
	rec := monitor.NewRecorder(2)
	rec.Record(0, "enq", trace.Int(1), func() trace.Value { return trace.Unit{} })

	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("panic did not propagate out of Record")
			}
			if r != "boom" {
				t.Fatalf("recovered %v, want the body's own panic value", r)
			}
		}()
		rec.Record(0, "deq", nil, func() trace.Value { panic("boom") })
	}()

	// The other process is unaffected.
	rec.Record(1, "enq", trace.Int(2), func() trace.Value { return trace.Unit{} })

	h := rec.History()
	if err := trace.WellFormed(h); err != nil {
		t.Fatalf("history after abort is not well-formed: %v", err)
	}
	want := trace.NewB().
		Op(0, "enq", trace.Int(1), trace.Unit{}).
		Inv(0, "deq", nil).
		Op(1, "enq", trace.Int(2), trace.Unit{}).
		Word()
	if !h.Equal(want) {
		t.Fatalf("history after abort:\n got %v\nwant %v", h, want)
	}

	// The pending deq is a crashed operation; the history replays cleanly.
	if _, err := monitor.Run(monitor.Config{N: 2, Object: trace.Queue(), Logic: monitor.LogicLin, History: h}); err != nil {
		t.Fatalf("replay of post-abort history: %v", err)
	}

	// The aborted process records no further events, with an honest message.
	for name, use := range map[string]func(){
		"Invoke":  func() { rec.Invoke(0, "enq", trace.Int(3)) },
		"Respond": func() { rec.Respond(0, trace.Unit{}) },
		"Record":  func() { rec.Record(0, "enq", nil, func() trace.Value { return trace.Unit{} }) },
	} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s on an aborted process did not panic", name)
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, `process 0 aborted (its "deq" Record body panicked)`) {
					t.Fatalf("%s on an aborted process panicked with %v, want the abort provenance", name, r)
				}
			}()
			use()
		}()
	}
}
