package monitor_test

import (
	"fmt"

	"github.com/drv-go/drv/exp/monitor"
	"github.com/drv-go/drv/exp/trace"
)

// ExampleRecorder instruments a workload by hand: Invoke/Respond bracket
// each operation, and overlapping brackets record concurrency.
func ExampleRecorder() {
	rec := monitor.NewRecorder(2)
	rec.Invoke(0, "enq", trace.Int(7)) // p0 starts enq(7)
	rec.Invoke(1, "deq", nil)          // p1's deq overlaps it
	rec.Respond(0, trace.Unit{})       // enq returns
	rec.Respond(1, trace.Int(7))       // deq returns 7
	fmt.Println(rec.History())
	// Output:
	// <0:enq(7) <1:deq() >0:enq=() >1:deq=7
}

// ExampleSession_Run replays a recorded queue history through the Figure-8
// predictive linearizability monitor.
func ExampleSession_Run() {
	rec := monitor.NewRecorder(3)
	rec.Record(0, "enq", trace.Int(1), func() trace.Value { return trace.Unit{} })
	rec.Record(1, "enq", trace.Int(2), func() trace.Value { return trace.Unit{} })
	rec.Record(2, "deq", nil, func() trace.Value { return trace.Int(1) })

	s := monitor.NewSession()
	defer s.Close()
	res, err := s.Run(monitor.Config{
		N:       3,
		Object:  trace.Queue(),
		Logic:   monitor.LogicLin,
		History: rec.History(),
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for p, vs := range res.Verdicts {
		fmt.Printf("p%d: %v\n", p, vs)
	}
	fmt.Println("NO reports:", res.TotalNO())
	// Output:
	// p0: [YES]
	// p1: [YES]
	// p2: [YES]
	// NO reports: 0
}
