// Package monitor exports the distributed monitors of the paper for external
// embedders: the Figure-8 predictive linearizability monitor V_O and its
// sequential-consistency variant, the Figure-5 weak decider for WEC_COUNT,
// the Figure-9 predictive-weak decider for SEC_COUNT, and the best-effort
// eventually-consistent-ledger monitor — attached to a recorded history of
// any concurrent object, including ones defined outside this module.
//
// WARNING: this package is experimental and carries no compatibility
// promise; see the README in the exp directory.
//
// # Embedding workflow
//
// Wrap a Recorder around your own concurrent data structure: call Invoke
// before each operation starts and Respond when it returns, from any
// goroutine. The Recorder serializes those events into a well-formed
// concurrent history (a trace.Word). Then replay the history through the
// monitor of your choice:
//
//	rec := monitor.NewRecorder(3)
//	// ... instrumented workload runs concurrently ...
//	res, err := monitor.Run(monitor.Config{
//		N:       3,
//		Object:  trace.Queue(),
//		Logic:   monitor.LogicLin,
//		History: rec.History(),
//	})
//
// The replay drives the paper's machinery end to end: a word-cursor
// adversary (Claim 3.1) exhibits exactly the recorded history, the timed
// adversary Aτ (Figure 6) attaches views to responses, and N monitor
// processes run the generic algorithm of Figure 1, reporting the verdict
// stream collected in the Result. Replay is deterministic: the same history
// yields a byte-identical Result.
//
// Workloads monitoring many histories should hold a Session and reuse it —
// the session pools the scheduler runtime and checker state, making the
// steady state allocation-free.
package monitor
