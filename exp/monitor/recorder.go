package monitor

import (
	"fmt"
	"sync"

	"github.com/drv-go/drv/exp/trace"
)

// Recorder is the instrumentation adapter: external programs wrap it around
// their own concurrent data structures to produce monitorable histories.
// Call Invoke immediately before an operation starts and Respond immediately
// after it returns, from any goroutine; the recorder serializes the events
// into a well-formed concurrent history in the real-time order the recorder
// observed them.
//
// Each logical process (0 ≤ proc < n) must be sequential — one outstanding
// operation at a time, matching the paper's model — but different processes
// may record concurrently. A goroutine per process is the natural mapping.
// Misuse (out-of-range process, overlapping operations on one process,
// response without an invocation) panics, like misusing a sync.Mutex: it is
// a bug in the embedder's instrumentation, not a runtime condition.
type Recorder struct {
	mu      sync.Mutex
	pending []string // per-process op name of the outstanding invocation
	open    []bool
	aborted []string // non-empty: op whose Record body panicked on this process
	w       trace.Word
}

// NewRecorder returns a recorder for n logical processes.
func NewRecorder(n int) *Recorder {
	if n < 1 {
		panic(fmt.Sprintf("monitor: NewRecorder n must be ≥ 1, got %d", n))
	}
	return &Recorder{pending: make([]string, n), open: make([]bool, n), aborted: make([]string, n)}
}

// Procs returns the number of logical processes.
func (r *Recorder) Procs() int { return len(r.pending) }

// Invoke records that process proc is invoking op with the given argument
// (nil for none). It must be followed by Respond on the same process before
// that process's next Invoke.
func (r *Recorder) Invoke(proc int, op string, arg trace.Value) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.check(proc)
	if r.open[proc] {
		panic(fmt.Sprintf("monitor: Recorder.Invoke: process %d already has a pending %q operation", proc, r.pending[proc]))
	}
	r.open[proc] = true
	r.pending[proc] = op
	r.w = append(r.w, trace.NewInv(proc, op, arg))
}

// Respond records that process proc's outstanding operation returned ret
// (nil for none). The operation name is the pending invocation's.
func (r *Recorder) Respond(proc int, ret trace.Value) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.check(proc)
	if !r.open[proc] {
		panic(fmt.Sprintf("monitor: Recorder.Respond: process %d has no pending operation", proc))
	}
	r.open[proc] = false
	r.w = append(r.w, trace.NewRes(proc, r.pending[proc], ret))
}

// Record runs op-body f bracketed by Invoke/Respond: it records the
// invocation, calls f outside the recorder lock, and records f's return
// value as the response. It is the one-line instrumentation for call sites
// that don't need to place the events themselves.
//
// If f panics, the panic propagates, but the recorder stays consistent: the
// open bracket is recorded as an abort. The invocation remains in the
// history as a pending operation — exactly the shape a crashed process
// leaves behind in the paper's model, which the monitors handle — and the
// process records no further events (recording on an aborted process panics
// with the abort's provenance rather than a misleading pending-operation
// message). Other processes are unaffected, and the history stays
// well-formed.
func (r *Recorder) Record(proc int, op string, arg trace.Value, f func() trace.Value) trace.Value {
	r.Invoke(proc, op, arg)
	completed := false
	defer func() {
		if !completed {
			r.abort(proc)
		}
	}()
	ret := f()
	completed = true
	r.Respond(proc, ret)
	return ret
}

// abort closes the bracket a panicking Record body left open: the pending
// invocation stays in the history as an incomplete operation and the process
// is marked crashed.
func (r *Recorder) abort(proc int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.aborted[proc] = r.pending[proc]
	r.open[proc] = false
	r.pending[proc] = ""
}

// History returns a copy of the history recorded so far. The copy is
// well-formed by construction (pending invocations are fine — monitors
// handle incomplete operations) and safe to hold while recording continues.
func (r *Recorder) History() trace.Word {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.w.Clone()
}

// Len returns the number of events recorded so far.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.w)
}

func (r *Recorder) check(proc int) {
	if proc < 0 || proc >= len(r.pending) {
		panic(fmt.Sprintf("monitor: Recorder: process %d out of range [0,%d)", proc, len(r.pending)))
	}
	if op := r.aborted[proc]; op != "" {
		panic(fmt.Sprintf("monitor: Recorder: process %d aborted (its %q Record body panicked); an aborted process records no further events", proc, op))
	}
}
