// Package exp is the root of the exported experimental surface of the drv
// module; see README.md in this directory. The packages below it —
// exp/trace (histories, specifications, verdicts, wire format) and
// exp/monitor (the monitors, the replay Session, the Recorder
// instrumentation adapter) — carry no compatibility promise.
//
// The package itself holds no code: it exists to anchor the API-surface
// lock test, which fails when the exported exp/... API drifts from the
// committed golden dump.
package exp
