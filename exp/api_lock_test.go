package exp_test

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the exported-API golden dump")

// expPackages are the exported experimental packages locked by this test.
var expPackages = []string{"trace", "monitor"}

// TestAPISurfaceLock renders every exported declaration of the exp/...
// packages and compares the dump against testdata/api.golden. Intentional
// surface changes are recorded with -update; anything else is drift.
func TestAPISurfaceLock(t *testing.T) {
	var dump bytes.Buffer
	for _, pkg := range expPackages {
		decls, err := exportedDecls(pkg)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&dump, "package %s\n\n", pkg)
		for _, d := range decls {
			fmt.Fprintln(&dump, d)
		}
		fmt.Fprintln(&dump)
	}
	golden := filepath.Join("testdata", "api.golden")
	if *update {
		if err := os.WriteFile(golden, dump.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dump.Bytes(), want) {
		t.Fatalf("exported exp/... API drifted from %s (rerun with -update if intended):\n--- current ---\n%s",
			golden, dump.Bytes())
	}
}

// TestNoInternalTypesInExportedSignatures guards the carve-out invariant: no
// type from an internal/... package may appear in an exported exp/...
// declaration. Constant value expressions are exempt — re-exporting an
// untyped constant (e.g. DefaultMaxSteps) names the internal package without
// leaking a type.
func TestNoInternalTypesInExportedSignatures(t *testing.T) {
	for _, pkg := range expPackages {
		files, fset, err := parseDir(pkg)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			internalImports := map[string]string{} // local name -> import path
			for _, imp := range f.Imports {
				path, _ := strconv.Unquote(imp.Path.Value)
				if !strings.Contains(path, "/internal/") && !strings.HasSuffix(path, "/internal") {
					continue
				}
				name := path[strings.LastIndex(path, "/")+1:]
				if imp.Name != nil {
					name = imp.Name.Name
				}
				internalImports[name] = path
			}
			if len(internalImports) == 0 {
				continue
			}
			check := func(where string, expr ast.Expr) {
				if expr == nil {
					return
				}
				ast.Inspect(expr, func(n ast.Node) bool {
					// Unexported struct fields are not part of the API; an
					// internal type there is the alias pattern working as
					// intended, not a leak.
					if field, ok := n.(*ast.Field); ok && len(field.Names) > 0 {
						exported := false
						for _, name := range field.Names {
							exported = exported || name.IsExported()
						}
						if !exported {
							return false
						}
					}
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					id, ok := sel.X.(*ast.Ident)
					if !ok {
						return true
					}
					if path, bad := internalImports[id.Name]; bad {
						t.Errorf("%s: exported %s references internal type %s.%s (%s)",
							fset.Position(sel.Pos()), where, id.Name, sel.Sel.Name, path)
					}
					return true
				})
			}
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Recv != nil || !d.Name.IsExported() {
						continue
					}
					check("func "+d.Name.Name, d.Type)
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() {
								check("type "+s.Name.Name, s.Type)
							}
						case *ast.ValueSpec:
							exported := false
							for _, n := range s.Names {
								exported = exported || n.IsExported()
							}
							if !exported {
								continue
							}
							where := d.Tok.String() + " " + s.Names[0].Name
							check(where, s.Type)
							if d.Tok == token.VAR {
								for _, v := range s.Values {
									check(where, v)
								}
							}
						}
					}
				}
			}
		}
	}
}

func parseDir(pkg string) ([]*ast.File, *token.FileSet, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(pkg)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(pkg, e.Name()), nil, 0)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	return files, fset, nil
}

// exportedDecls renders the exported top-level declarations of an exp
// package, one normalized snippet per declaration, sorted.
func exportedDecls(pkg string) ([]string, error) {
	files, fset, err := parseDir(pkg)
	if err != nil {
		return nil, err
	}
	var out []string
	render := func(node any) (string, error) {
		var buf bytes.Buffer
		cfg := printer.Config{Mode: printer.UseSpaces, Tabwidth: 8}
		if err := cfg.Fprint(&buf, fset, node); err != nil {
			return "", err
		}
		return buf.String(), nil
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if d.Recv != nil && !receiverExported(d.Recv) {
					continue
				}
				stripped := *d
				stripped.Body = nil
				stripped.Doc = nil
				s, err := render(&stripped)
				if err != nil {
					return nil, err
				}
				out = append(out, s)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					var name *ast.Ident
					switch s := spec.(type) {
					case *ast.TypeSpec:
						name = s.Name
						s.Doc, s.Comment = nil, nil
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if n.IsExported() {
								name = n
								break
							}
						}
						s.Doc, s.Comment = nil, nil
					}
					if name == nil || !name.IsExported() {
						continue
					}
					single := &ast.GenDecl{Tok: d.Tok, Specs: []ast.Spec{spec}}
					s, err := render(single)
					if err != nil {
						return nil, err
					}
					out = append(out, s)
				}
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

func receiverExported(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}
