package trace

import (
	"strconv"
	"strings"
)

// View is the timestamp a timed adversary attaches to a response (Section
// 6.1): the set of invocations announced in the shared array M at the moment
// of the post-response snapshot. Because each process announces its own
// invocations in order, a view is fully described by a per-process count
// vector — view v contains the first v.Count(i) invocations of every process
// i. Views obtained through atomic snapshots are totally ordered by
// containment (the comparability property Appendix B's construction relies
// on), which here is pointwise ≤ on counts.
type View struct {
	counts []int
}

// NewView builds a view from a per-process invocation-count vector. The
// slice is copied.
func NewView(counts []int) View {
	c := make([]int, len(counts))
	copy(c, counts)
	return View{counts: c}
}

// Procs returns the number of processes the view spans.
func (v View) Procs() int { return len(v.counts) }

// Count returns how many invocations of process i the view contains.
func (v View) Count(i int) int { return v.counts[i] }

// Total returns the number of invocations in the view.
func (v View) Total() int {
	t := 0
	for _, c := range v.counts {
		t += c
	}
	return t
}

// Contains reports whether the view contains the identified invocation.
func (v View) Contains(id OpID) bool {
	return id.Proc < len(v.counts) && id.Idx < v.counts[id.Proc]
}

// Leq reports containment v ⊆ u, i.e. pointwise ≤.
func (v View) Leq(u View) bool {
	for i, c := range v.counts {
		if c > u.counts[i] {
			return false
		}
	}
	return true
}

// Equal reports v = u.
func (v View) Equal(u View) bool {
	if len(v.counts) != len(u.counts) {
		return false
	}
	for i, c := range v.counts {
		if c != u.counts[i] {
			return false
		}
	}
	return true
}

// Comparable reports whether the views are ordered by containment one way or
// the other. Atomic-snapshot views always are; collect-based timed
// adversaries can break this, which is the complication [41] addresses.
func (v View) Comparable(u View) bool { return v.Leq(u) || u.Leq(v) }

// Key renders the canonical encoding of the view, usable as a map key.
func (v View) Key() string {
	var b strings.Builder
	for i, c := range v.counts {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(c))
	}
	return b.String()
}

// Diff calls fn for every invocation in v but not in u (u ⊆ v expected):
// the "view_k \ view_{k−1}" enumeration of Appendix B's construction.
func (v View) Diff(u View, fn func(id OpID)) {
	for i, c := range v.counts {
		lo := 0
		if i < len(u.counts) {
			lo = u.counts[i]
		}
		for k := lo; k < c; k++ {
			fn(OpID{Proc: i, Idx: k})
		}
	}
}

// String implements fmt.Stringer.
func (v View) String() string { return "view[" + v.Key() + "]" }

// Response is what a monitor process receives back from the service under
// inspection in Line 04 of the generic algorithm (Figure 1): the response
// symbol, and — when the service is a timed adversary — the view attached to
// it, plus the operation identifier the service assigned to the interaction.
type Response struct {
	Sym Symbol
	// ID tags the operation this response completes; unique per execution.
	ID OpID
	// View is non-nil only for timed services.
	View *View
}
