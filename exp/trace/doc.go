// Package trace is the data layer of the runtime-verification pipeline,
// exported for external embedders: concurrent histories (finite prefixes of
// the ω-words of Section 2 of the paper), the sequential object
// specifications they are judged against, the views and sketches of the
// timed-adversary construction (Section 6.1, Appendix B), monitor verdict
// streams, and the JSON-lines wire format that records all of it on disk.
//
// WARNING: this package is experimental and carries no compatibility
// promise; see the README in the exp directory. The internal packages alias
// these definitions, so there is exactly one implementation, but the
// exported names and signatures may change without notice.
//
// # Histories
//
// A Symbol is one event of a concurrent history: an invocation sent by a
// process to the service under inspection, or a response received from it. A
// Word is a finite sequence of symbols; Operations pairs the matched
// invocation/response events, and WellFormed checks per-process alternation.
// Use the B builder or a Recorder (package exp/monitor) to produce words.
//
// # Sequential specifications
//
// An Object is a deterministic state machine — Register, Counter, Queue,
// Stack, Ledger, Consensus, Vector — against which checkers and monitors
// validate histories. Custom objects implement the Object and State
// interfaces.
//
// # Verdicts and results
//
// A Result is the outcome of one monitored execution: the exhibited history,
// the per-process verdict streams, and the alignment indices relating each
// verdict to the history prefix it judged.
//
// # Wire format
//
// Writer and Read stream executions as JSON lines: one Meta header, then Sym
// and Verdict events in the order they occurred. The encoding round-trips
// byte-deterministically: encode(decode(encode(w))) == encode(w).
package trace
