package trace

import (
	"math/rand"
)

// State is an immutable sequential-object state. Apply never mutates the
// receiver; it returns the successor state, so checker searches can branch.
type State interface {
	// Apply runs one operation on the state and returns the successor state
	// and the operation's return value. ok is false when the operation name
	// is unknown; total objects (footnote 3 of the paper) accept every
	// operation in every state.
	Apply(op string, arg Value) (next State, ret Value, ok bool)
	// Key is a canonical encoding of the state used to memoize checker
	// searches. Two states with equal keys must be behaviourally identical.
	Key() string
}

// KeyAppender is an optional fast path for State.Key: AppendKey appends the
// exact bytes Key would return to b and returns the extended slice, letting
// checker searches build memo keys into reused buffers instead of allocating
// a string per visited node. Implementations must keep the two encodings
// identical.
type KeyAppender interface {
	AppendKey(b []byte) []byte
}

// OpSig describes one operation of an object's interface, for workload
// generators.
type OpSig struct {
	Name string
	// Mutating operations change the object state (write, inc, append, enq,
	// push); generators use this to balance workloads. The flag is a
	// contract, not a hint: Apply of a non-mutating operation must return
	// the state unchanged — the incremental checker's verdict caching
	// (check.Incremental) relies on it.
	Mutating bool
}

// RootInterner is an optional Object interface for states with internal
// sharing: InternRoot returns a fresh state equivalent to Init whose
// reachable states are interned privately for the caller, so a search that
// re-applies the same operations along reconverging branches gets the same
// state value back instead of an allocation. The returned state (and
// everything reached from it) must stay within one goroutine.
type RootInterner interface {
	InternRoot() State
}

// Object is a sequential object: a name, an initial state, and an operation
// signature set.
type Object interface {
	// Name returns the object's name, e.g. "register".
	Name() string
	// Init returns the initial state.
	Init() State
	// Ops lists the object's operations.
	Ops() []OpSig
	// RandArg draws a random valid argument for the named operation.
	RandArg(op string, rng *rand.Rand) Value
}

// SeqValid applies the operations of a sequential word (alternating matched
// invocation/response pairs, no interleaving) to the object's initial state
// and reports whether every response matches the specification. It is the
// "valid sequential history" test used throughout Section 2.
func SeqValid(obj Object, ops []Operation) bool {
	st := obj.Init()
	for _, o := range ops {
		next, ret, ok := st.Apply(o.Op, o.Arg)
		if !ok {
			return false
		}
		if o.Ret != nil && !ret.Equal(o.Ret) {
			return false
		}
		st = next
	}
	return true
}
