package trace

import (
	"fmt"
	"math/rand"
	"strconv"
)

// Operation names shared by the objects in this package. Using shared
// constants keeps generators, checkers and monitors in agreement.
const (
	OpRead   = "read"
	OpWrite  = "write"
	OpInc    = "inc"
	OpAppend = "append"
	OpGet    = "get"
	OpEnq    = "enq"
	OpDeq    = "deq"
	OpPush   = "push"
	OpPop    = "pop"
)

// Empty is the return value of deq/pop on an empty queue/stack.
const Empty = Int(-1)

// ---------------------------------------------------------------- register

// Register returns the sequential read/write register of Example 1 with
// initial value 0: write(x) stores x, read() returns the current value.
func Register() Object { return register{} }

type register struct{}

func (register) Name() string { return "register" }
func (register) Init() State  { return regState(0) }
func (register) Ops() []OpSig {
	return []OpSig{{Name: OpWrite, Mutating: true}, {Name: OpRead}}
}
func (register) RandArg(op string, rng *rand.Rand) Value {
	if op == OpWrite {
		return Int(rng.Intn(100))
	}
	return Unit{}
}

type regState Int

func (s regState) Key() string { return fmt.Sprintf("r%d", int64(s)) }

// AppendKey implements spec.KeyAppender with the Key encoding.
func (s regState) AppendKey(b []byte) []byte {
	return strconv.AppendInt(append(b, 'r'), int64(s), 10)
}
func (s regState) Apply(op string, arg Value) (State, Value, bool) {
	switch op {
	case OpWrite:
		v, ok := arg.(Int)
		if !ok {
			return s, nil, false
		}
		return regState(v), Unit{}, true
	case OpRead:
		return s, Int(s), true
	default:
		return s, nil, false
	}
}

// ---------------------------------------------------------------- counter

// Counter returns the sequential counter of Example 3 with initial value 0:
// inc() adds one, read() returns the current value.
func Counter() Object { return counter{} }

type counter struct{}

func (counter) Name() string { return "counter" }
func (counter) Init() State  { return ctrState(0) }
func (counter) Ops() []OpSig {
	return []OpSig{{Name: OpInc, Mutating: true}, {Name: OpRead}}
}
func (counter) RandArg(string, *rand.Rand) Value { return Unit{} }

type ctrState Int

func (s ctrState) Key() string { return fmt.Sprintf("c%d", int64(s)) }

// AppendKey implements spec.KeyAppender with the Key encoding.
func (s ctrState) AppendKey(b []byte) []byte {
	return strconv.AppendInt(append(b, 'c'), int64(s), 10)
}
func (s ctrState) Apply(op string, arg Value) (State, Value, bool) {
	switch op {
	case OpInc:
		return s + 1, Unit{}, true
	case OpRead:
		return s, Int(s), true
	default:
		return s, nil, false
	}
}

// ---------------------------------------------------------------- consensus

// OpPropose is the propose operation of the Consensus object.
const OpPropose = "propose"

// Consensus returns the sequential one-shot consensus object: the first
// propose(v) decides v and returns it; every later propose returns the
// decided value regardless of its own argument. It is the sequential
// specification against which the message-passing coordinator emulation
// (package abd) is judged.
func Consensus() Object { return consensus{} }

type consensus struct{}

func (consensus) Name() string { return "consensus" }
func (consensus) Init() State  { return consState{} }
func (consensus) Ops() []OpSig {
	return []OpSig{{Name: OpPropose, Mutating: true}}
}
func (consensus) RandArg(_ string, rng *rand.Rand) Value {
	return Int(rng.Intn(100))
}

type consState struct {
	decided bool
	val     Int
}

func (s consState) Key() string {
	if !s.decided {
		return "u"
	}
	return fmt.Sprintf("d%d", int64(s.val))
}

// AppendKey implements spec.KeyAppender with the Key encoding.
func (s consState) AppendKey(b []byte) []byte {
	if !s.decided {
		return append(b, 'u')
	}
	return strconv.AppendInt(append(b, 'd'), int64(s.val), 10)
}

func (s consState) Apply(op string, arg Value) (State, Value, bool) {
	if op != OpPropose {
		return s, nil, false
	}
	v, ok := arg.(Int)
	if !ok {
		return s, nil, false
	}
	if !s.decided {
		return consState{decided: true, val: v}, v, true
	}
	return s, s.val, true
}

// ---------------------------------------------------------------- ledger

// Ledger returns the sequential ledger object of Example 2 (after [3]): its
// state is a list of records, append(r) appends r, get() returns the list.
func Ledger() Object { return ledger{} }

type ledger struct{}

func (ledger) Name() string { return "ledger" }
func (ledger) Init() State  { return ledState{} }

// InternRoot implements spec.RootInterner: the returned root node anchors a
// private interned tree of append children, so one checker's searches share
// ledger states across reconverging branches.
func (ledger) InternRoot() State { return ledState{n: &ledNode{root: true}} }
func (ledger) Ops() []OpSig {
	return []OpSig{{Name: OpAppend, Mutating: true}, {Name: OpGet}}
}
func (ledger) RandArg(op string, rng *rand.Rand) Value {
	if op == OpAppend {
		return Rec(fmt.Sprintf("r%d", rng.Intn(1000)))
	}
	return Unit{}
}

// ledState is a persistent ledger: appends share their prefix through parent
// links, so Apply(append) is one small allocation instead of a full record
// copy — checker searches apply every candidate operation at every visited
// node, which made copying the dominant cost of SC_LED/LIN_LED scenarios.
// The canonical encoding and the materialized record list are cached on the
// node the first time they are needed; states remain immutable values (the
// cache fills in idempotently, and states never cross goroutines mid-search).
type ledState struct {
	n *ledNode // nil = empty ledger
}

type ledNode struct {
	parent *ledNode
	rec    Rec
	root   bool       // an empty-ledger anchor from InternRoot
	enc    string     // lazy: "l" + rec + "|" per record, prefix-shared
	seq    Seq        // lazy: materialized record list
	val    Value      // lazy: seq boxed once, so get never re-boxes
	kids   []*ledNode // interned append children, one per distinct record
}

// emptyRecs is the boxed return of get on the empty ledger, shared so the
// hot checker loop never re-boxes the slice header.
var emptyRecs Value = Seq(nil)

func (s ledState) Key() string {
	if s.n == nil {
		return "l"
	}
	return s.n.key()
}

func (n *ledNode) key() string {
	if n.enc == "" {
		if n.root {
			n.enc = "l"
		} else {
			n.enc = ledState{n.parent}.Key() + string(n.rec) + "|"
		}
	}
	return n.enc
}

func (s ledState) recs() Seq {
	if s.n == nil || s.n.root {
		return nil
	}
	n := s.n
	if n.seq == nil {
		parent := ledState{n.parent}.recs()
		// Cap the parent's slice so sibling appends cannot share growth.
		n.seq = append(parent[:len(parent):len(parent)], n.rec)
	}
	return n.seq
}

// AppendKey implements spec.KeyAppender with the Key encoding.
func (s ledState) AppendKey(b []byte) []byte { return append(b, s.Key()...) }

func (s ledState) Apply(op string, arg Value) (State, Value, bool) {
	switch op {
	case OpAppend:
		r, ok := arg.(Rec)
		if !ok {
			return s, nil, false
		}
		// Checker searches re-apply the same appends along reconverging
		// branches; interning children per (parent, record) makes those
		// branches share one node instead of allocating per visit. Like the
		// enc/seq caches, the kids list relies on states staying within one
		// goroutine between appends.
		if s.n != nil {
			for _, k := range s.n.kids {
				if k.rec == r {
					return ledState{n: k}, Unit{}, true
				}
			}
			k := &ledNode{parent: s.n, rec: r}
			s.n.kids = append(s.n.kids, k)
			return ledState{n: k}, Unit{}, true
		}
		return ledState{n: &ledNode{parent: s.n, rec: r}}, Unit{}, true
	case OpGet:
		// States are immutable and Values are never mutated by consumers, so
		// the cached record list can be returned without a defensive clone —
		// and without re-boxing it into a Value on every call, which was the
		// dominant allocation of checker searches.
		if s.n == nil || s.n.root {
			return s, emptyRecs, true
		}
		if s.n.val == nil {
			s.n.val = s.recs()
		}
		return s, s.n.val, true
	default:
		return s, nil, false
	}
}

// ---------------------------------------------------------------- vector

// OpScan is the scan operation of the Vector object.
const OpScan = "scan"

// OpUpd returns the update operation name for cell i of a Vector object.
func OpUpd(i int) string { return fmt.Sprintf("upd%d", i) }

// Vector returns the n-cell snapshot-object specification: upd<i>(v) writes v
// into cell i and scan() returns the whole vector, encoded as a Seq of
// decimal strings. It is the sequential specification against which the
// wait-free snapshot protocol (package mem) is validated.
func Vector(n int) Object { return vector{n: n} }

type vector struct {
	n int
}

func (v vector) Name() string { return fmt.Sprintf("vector%d", v.n) }
func (v vector) Init() State {
	cells := make(Seq, v.n)
	for i := range cells {
		cells[i] = "0"
	}
	return vecState{cells: cells}
}
func (v vector) Ops() []OpSig {
	sigs := make([]OpSig, 0, v.n+1)
	for i := 0; i < v.n; i++ {
		sigs = append(sigs, OpSig{Name: OpUpd(i), Mutating: true})
	}
	return append(sigs, OpSig{Name: OpScan})
}
func (v vector) RandArg(op string, rng *rand.Rand) Value {
	if op == OpScan {
		return Unit{}
	}
	return Int(rng.Intn(100))
}

type vecState struct {
	cells Seq
}

func (s vecState) Key() string { return "v" + s.cells.String() }

// AppendKey implements spec.KeyAppender with the Key encoding.
func (s vecState) AppendKey(b []byte) []byte {
	return append(append(b, 'v'), s.cells.String()...)
}

func (s vecState) Apply(op string, arg Value) (State, Value, bool) {
	if op == OpScan {
		return s, s.cells.Clone(), true
	}
	if len(op) <= 3 || op[:3] != "upd" {
		return s, nil, false
	}
	i, err := strconv.Atoi(op[3:])
	if err != nil || i < 0 || i >= len(s.cells) {
		return s, nil, false
	}
	v, ok := arg.(Int)
	if !ok {
		return s, nil, false
	}
	next := s.cells.Clone()
	next[i] = Rec(v.String())
	return vecState{cells: next}, Unit{}, true
}

// ---------------------------------------------------------------- queue

// Queue returns a sequential FIFO queue of integers: enq(x) appends, deq()
// removes and returns the head, or Empty when the queue is empty. Queues are
// among the objects for which [17] proved no sound-and-complete asynchronous
// monitor exists, motivating strong decidability's impossibility.
func Queue() Object { return queue{} }

type queue struct{}

func (queue) Name() string { return "queue" }
func (queue) Init() State  { return queueState{} }

// InternRoot implements spec.RootInterner: the returned root anchors a
// private interned tree of queue states, so one checker's searches share
// states across reconverging branches instead of re-encoding per visit.
func (queue) InternRoot() State { return queueState{n: &queueNode{}} }
func (queue) Ops() []OpSig {
	return []OpSig{{Name: OpEnq, Mutating: true}, {Name: OpDeq, Mutating: true}}
}
func (queue) RandArg(op string, rng *rand.Rand) Value {
	if op == OpEnq {
		return Int(rng.Intn(100))
	}
	return Unit{}
}

// queueState is a persistent queue in the ledState mould: nodes record the
// enqueue/dequeue path and intern their children, so checker searches — which
// re-apply every candidate operation at every visited node — share one node
// per distinct reachable queue instead of building a fresh encoding string
// (and fmt.Sscanf-decoding the head item) on every visit. The abstract state
// is the remaining-item sequence; the key encodes exactly that, so paths that
// reconverge on the same remaining items still hit the same memo entry.
type queueState struct {
	n *queueNode // nil = the never-touched empty queue
}

type queueNode struct {
	parent *queueNode
	val    Int          // the item this node enqueued (enq nodes only)
	enq    bool         // true: enqueued val; false: dequeued one (or the root)
	enqs   int          // enqueues along the path
	head   int          // dequeues along the path
	kids   []*queueNode // interned enqueue children, one per distinct item
	deq    *queueNode   // interned dequeue child
}

// itemAt walks the path to the enqueue with index i (0-based). The walk is
// bounded by the path length — paying a pointer chase per lookup instead of
// materializing an item slice per node keeps the search's working set flat.
func (n *queueNode) itemAt(i int) Int {
	m := n
	for !m.enq || m.enqs != i+1 {
		m = m.parent
	}
	return m.val
}

// appendItems appends the comma-joined decimal items with enqueue index head
// and above, in enqueue order, by recursing to the front of the path first.
func (n *queueNode) appendItems(b []byte, head int) []byte {
	m := n
	for m != nil && !m.enq {
		m = m.parent
	}
	if m == nil || m.enqs <= head {
		return b
	}
	b = m.parent.appendItems(b, head)
	if m.enqs-1 > head {
		b = append(b, ',')
	}
	return strconv.AppendInt(b, int64(m.val), 10)
}

func (s queueState) Key() string { return string(s.AppendKey(nil)) }

// AppendKey implements spec.KeyAppender: "q" plus the comma-joined decimal
// encoding of the remaining items, byte-identical to the historical flat
// string encoding.
func (s queueState) AppendKey(b []byte) []byte {
	b = append(b, 'q')
	if s.n == nil {
		return b
	}
	return s.n.appendItems(b, s.n.head)
}

func (s queueState) Apply(op string, arg Value) (State, Value, bool) {
	switch op {
	case OpEnq:
		v, ok := arg.(Int)
		if !ok {
			return s, nil, false
		}
		if s.n != nil {
			for _, k := range s.n.kids {
				if k.val == v {
					return queueState{n: k}, Unit{}, true
				}
			}
			k := &queueNode{parent: s.n, val: v, enq: true, enqs: s.n.enqs + 1, head: s.n.head}
			s.n.kids = append(s.n.kids, k)
			return queueState{n: k}, Unit{}, true
		}
		return queueState{n: &queueNode{val: v, enq: true, enqs: 1}}, Unit{}, true
	case OpDeq:
		n := s.n
		if n == nil || n.enqs == n.head {
			return s, Empty, true
		}
		v := n.itemAt(n.head)
		if n.deq == nil {
			n.deq = &queueNode{parent: n, enqs: n.enqs, head: n.head + 1}
		}
		return queueState{n: n.deq}, v, true
	default:
		return s, nil, false
	}
}

// ---------------------------------------------------------------- stack

// Stack returns a sequential LIFO stack of integers: push(x), pop() returns
// the top or Empty when empty.
func Stack() Object { return stack{} }

type stack struct{}

func (stack) Name() string { return "stack" }
func (stack) Init() State  { return stackState{} }

// InternRoot implements spec.RootInterner: the returned root anchors a
// private interned tree of stack states, like Queue's.
func (stack) InternRoot() State { return stackState{n: &stackNode{}} }
func (stack) Ops() []OpSig {
	return []OpSig{{Name: OpPush, Mutating: true}, {Name: OpPop, Mutating: true}}
}
func (stack) RandArg(op string, rng *rand.Rand) Value {
	if op == OpPush {
		return Int(rng.Intn(100))
	}
	return Unit{}
}

// stackState is a persistent stack: push interns a child node, pop walks back
// to the parent — the exact ledState shape, since a stack *is* a ledger whose
// get is destructive. Checker searches share one node per distinct reachable
// stack instead of re-encoding strings per visit.
type stackState struct {
	n *stackNode // nil = the never-touched empty stack
}

type stackNode struct {
	parent *stackNode
	val    Int
	depth  int          // pushed items along the path; 0 = an empty-stack anchor
	kids   []*stackNode // interned push children, one per distinct item
}

// appendItems appends the comma-joined decimal items bottom to top, recursing
// to the bottom of the stack first.
func (n *stackNode) appendItems(b []byte) []byte {
	if n == nil || n.depth == 0 {
		return b
	}
	b = n.parent.appendItems(b)
	if n.depth > 1 {
		b = append(b, ',')
	}
	return strconv.AppendInt(b, int64(n.val), 10)
}

func (s stackState) Key() string { return string(s.AppendKey(nil)) }

// AppendKey implements spec.KeyAppender: "s" plus the comma-joined decimal
// encoding of the items bottom to top, byte-identical to the historical flat
// string encoding.
func (s stackState) AppendKey(b []byte) []byte {
	return s.n.appendItems(append(b, 's'))
}

func (s stackState) Apply(op string, arg Value) (State, Value, bool) {
	switch op {
	case OpPush:
		v, ok := arg.(Int)
		if !ok {
			return s, nil, false
		}
		if s.n != nil {
			for _, k := range s.n.kids {
				if k.val == v {
					return stackState{n: k}, Unit{}, true
				}
			}
			k := &stackNode{parent: s.n, val: v, depth: s.n.depth + 1}
			s.n.kids = append(s.n.kids, k)
			return stackState{n: k}, Unit{}, true
		}
		return stackState{n: &stackNode{val: v, depth: 1}}, Unit{}, true
	case OpPop:
		if s.n == nil || s.n.depth == 0 {
			return s, Empty, true
		}
		return stackState{n: s.n.parent}, s.n.val, true
	default:
		return s, nil, false
	}
}
