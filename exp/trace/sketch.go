// Package sketch implements the construction of Appendix B: from the views a
// timed adversary Aτ attaches to responses, build the history x~(E) — the
// sketch of the execution's input word in which operations may "shrink"
// (Figure 7). Theorem 6.1 gives the two properties monitors rely on:
// precedence in x(E) is preserved in x~(E), and x~(E) is the input of an
// execution indistinguishable from E.
package trace

import (
	"cmp"
	"errors"
	"fmt"
	"slices"
)

// ErrIncomparableViews is returned when the collected views do not form a
// containment chain. Atomic-snapshot timed adversaries never trigger it;
// collect-based ones can (the complication addressed in [41]).
var ErrIncomparableViews = errors.New("sketch: views are not totally ordered by containment")

// Triple is one observed interaction with Aτ: the invocation a process sent,
// the identifier Aτ assigned, the response, and the view attached to it.
// Triples are what Figure 8's monitor stores in its shared array M.
type Triple struct {
	ID   OpID
	Inv  Symbol
	Res  Symbol
	View View
}

// Resolver maps announced invocation identifiers to their symbols. Views may
// contain invocations of operations whose responses the collector never saw;
// the resolver (backed by Aτ's announcement log) supplies their symbols.
type Resolver func(OpID) Symbol

// BuildSketch constructs the sketch history from the triples, per Appendix B:
// distinct views are sorted in ascending containment order; for each view in
// turn, first the invocations in its difference with the previous view are
// appended, then the responses of all operations carrying exactly that view.
// Within a batch, symbols are appended in operation-identifier order — one
// canonical representative of the construction's equivalence class (any
// batch order yields the same precedence relations).
func BuildSketch(n int, triples []Triple, resolve Resolver) (Word, error) {
	var b SketchBuilder
	return b.BuildSketch(n, triples, resolve)
}

// SketchBuilder holds BuildSketch's scratch buffers. A monitor logic that builds one
// sketch per round reuses its SketchBuilder, so steady-state rounds allocate
// nothing; the word a BuildSketch returns aliases the scratch and is valid until
// the next call on the same SketchBuilder.
type SketchBuilder struct {
	tris  []Triple
	out   Word
	fresh []OpID
}

// BuildSketch is the buffer-reusing form of the package-level BuildSketch; both produce
// byte-identical words. The triples slice is not modified.
func (b *SketchBuilder) BuildSketch(n int, triples []Triple, resolve Resolver) (Word, error) {
	if len(triples) == 0 {
		return nil, nil
	}
	for i := range triples {
		if !triples[i].View.Contains(triples[i].ID) {
			return nil, fmt.Errorf("sketch: triple %v has view %v missing its own invocation", triples[i].ID, triples[i].View)
		}
	}
	// Sorting by (view total, identifier) groups each distinct view of a
	// containment chain into one run — equal totals force equal views — with
	// the run's responses already in canonical batch order.
	b.tris = append(b.tris[:0], triples...)
	slices.SortFunc(b.tris, func(x, y Triple) int {
		if d := cmp.Compare(x.View.Total(), y.View.Total()); d != 0 {
			return d
		}
		return compareOpIDs(x.ID, y.ID)
	})
	out := b.out[:0]
	fresh := b.fresh[:0]
	var prev View // the empty view
	for i := 0; i < len(b.tris); {
		v := b.tris[i].View
		j := i + 1
		for ; j < len(b.tris) && b.tris[j].View.Total() == v.Total(); j++ {
			if !b.tris[j].View.Equal(v) {
				b.out, b.fresh = out, fresh
				return nil, fmt.Errorf("%w: %v vs %v", ErrIncomparableViews, v, b.tris[j].View)
			}
		}
		if !prev.Leq(v) {
			b.out, b.fresh = out, fresh
			return nil, fmt.Errorf("%w: %v vs %v", ErrIncomparableViews, prev, v)
		}
		// Step 1: invocations newly visible in this view, enumerated in
		// identifier order (Diff ascends by process then index).
		fresh = fresh[:0]
		for p := 0; p < v.Procs(); p++ {
			lo := 0
			if p < prev.Procs() {
				lo = prev.Count(p)
			}
			for k := lo; k < v.Count(p); k++ {
				fresh = append(fresh, OpID{Proc: p, Idx: k})
			}
		}
		for _, id := range fresh {
			out = append(out, resolve(id))
		}
		// Step 2: responses of the operations carrying exactly this view.
		for k := i; k < j; k++ {
			out = append(out, b.tris[k].Res)
		}
		prev = v
		i = j
	}
	b.out, b.fresh = out, fresh
	return out, nil
}

// compareOpIDs orders identifiers by process then per-process index — the
// canonical batch order of the construction.
func compareOpIDs(a, b OpID) int {
	if a.Proc != b.Proc {
		return cmp.Compare(a.Proc, b.Proc)
	}
	return cmp.Compare(a.Idx, b.Idx)
}
