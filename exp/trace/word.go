package trace

import (
	"fmt"
	"strings"
)

// Kind distinguishes invocation symbols (Σ<) from response symbols (Σ>).
type Kind uint8

const (
	// Inv marks a symbol of the invocation alphabet Σ< of a process.
	Inv Kind = iota + 1
	// Res marks a symbol of the response alphabet Σ> of a process.
	Res
)

// String returns "inv" or "res".
func (k Kind) String() string {
	switch k {
	case Inv:
		return "inv"
	case Res:
		return "res"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is the payload carried by a symbol: the argument of an invocation or
// the return value of a response. The paper's alphabets are possibly
// infinite, so values are structured rather than enumerated.
type Value interface {
	// String renders the value; it doubles as the canonical encoding used
	// for equality-sensitive hashing by the checkers.
	String() string
	// Equal reports whether the value equals another value.
	Equal(Value) bool
}

// Unit is the value of operations that return or take nothing, such as the
// response of write, inc and append.
type Unit struct{}

// String implements Value.
func (Unit) String() string { return "()" }

// Equal implements Value.
func (Unit) Equal(v Value) bool { _, ok := v.(Unit); return ok }

// Int is an integer value: register contents, counter readings.
type Int int64

// String implements Value.
func (i Int) String() string { return fmt.Sprintf("%d", int64(i)) }

// Equal implements Value.
func (i Int) Equal(v Value) bool { j, ok := v.(Int); return ok && i == j }

// Rec is a ledger record from the universe U of appendable records.
type Rec string

// String implements Value.
func (r Rec) String() string { return string(r) }

// Equal implements Value.
func (r Rec) Equal(v Value) bool { s, ok := v.(Rec); return ok && r == s }

// Seq is a finite sequence of ledger records, the return value of get().
type Seq []Rec

// String implements Value.
func (s Seq) String() string {
	parts := make([]string, len(s))
	for i, r := range s {
		parts[i] = string(r)
	}
	return "[" + strings.Join(parts, "·") + "]"
}

// Equal implements Value.
func (s Seq) Equal(v Value) bool {
	t, ok := v.(Seq)
	if !ok || len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the sequence that shares no storage with s.
func (s Seq) Clone() Seq {
	t := make(Seq, len(s))
	copy(t, s)
	return t
}

// Symbol is a single event of a concurrent history. Proc identifies the local
// alphabet Σ_i the symbol belongs to (0-based; the paper indexes from 1), Op
// names the object operation the symbol is an invocation of or response to,
// and Val carries the argument or return value.
type Symbol struct {
	Proc int
	Kind Kind
	Op   string
	Val  Value
}

// NewInv builds an invocation symbol.
func NewInv(proc int, op string, arg Value) Symbol {
	return Symbol{Proc: proc, Kind: Inv, Op: op, Val: arg}
}

// NewRes builds a response symbol.
func NewRes(proc int, op string, ret Value) Symbol {
	return Symbol{Proc: proc, Kind: Res, Op: op, Val: ret}
}

// String renders the symbol in a compact form mirroring the paper's <ᵛᵢ / >ʷᵢ
// notation, e.g. "<1:write(3)" and ">1:write()".
func (s Symbol) String() string {
	mark := "<"
	if s.Kind == Res {
		mark = ">"
	}
	val := ""
	if s.Val != nil {
		val = s.Val.String()
	}
	if s.Kind == Inv {
		return fmt.Sprintf("%s%d:%s(%s)", mark, s.Proc, s.Op, val)
	}
	return fmt.Sprintf("%s%d:%s=%s", mark, s.Proc, s.Op, val)
}

// Equal reports whether two symbols are identical events (same process, kind,
// operation and payload).
func (s Symbol) Equal(t Symbol) bool {
	if s.Proc != t.Proc || s.Kind != t.Kind || s.Op != t.Op {
		return false
	}
	if s.Val == nil || t.Val == nil {
		return s.Val == nil && t.Val == nil
	}
	return s.Val.Equal(t.Val)
}

// Word is a finite sequence of symbols: a finite prefix of an ω-word over a
// distributed alphabet.
type Word []Symbol

// Clone returns a copy of the word sharing no top-level storage with w.
func (w Word) Clone() Word {
	c := make(Word, len(w))
	copy(c, w)
	return c
}

// Equal reports whether two words are symbol-wise identical.
func (w Word) Equal(v Word) bool {
	if len(w) != len(v) {
		return false
	}
	for i := range w {
		if !w[i].Equal(v[i]) {
			return false
		}
	}
	return true
}

// String renders the word as a space-separated symbol sequence.
func (w Word) String() string {
	parts := make([]string, len(w))
	for i, s := range w {
		parts[i] = s.String()
	}
	return strings.Join(parts, " ")
}

// Project returns the local word w|i: the subsequence of symbols of process i.
func (w Word) Project(proc int) Word {
	var out Word
	for _, s := range w {
		if s.Proc == proc {
			out = append(out, s)
		}
	}
	return out
}

// Procs returns one plus the largest process index mentioned in the word, i.e.
// the least n such that the word is over an n-process distributed alphabet.
func (w Word) Procs() int {
	n := 0
	for _, s := range w {
		if s.Proc+1 > n {
			n = s.Proc + 1
		}
	}
	return n
}

// Append returns w extended with the given symbols. The receiver may be
// shared; the result never aliases future appends of the receiver.
func (w Word) Append(syms ...Symbol) Word {
	out := make(Word, 0, len(w)+len(syms))
	out = append(out, w...)
	out = append(out, syms...)
	return out
}

// B is a fluent builder for words used heavily in tests and in scripted
// adversaries: B().Inv(0,"write",Int(1)).Res(0,"write",Unit{}).Word().
type B struct {
	w Word
}

// NewB returns an empty word builder.
func NewB() *B { return &B{} }

// Inv appends an invocation symbol and returns the builder.
func (b *B) Inv(proc int, op string, arg Value) *B {
	b.w = append(b.w, NewInv(proc, op, arg))
	return b
}

// Res appends a response symbol and returns the builder.
func (b *B) Res(proc int, op string, ret Value) *B {
	b.w = append(b.w, NewRes(proc, op, ret))
	return b
}

// Op appends a complete operation (invocation immediately followed by its
// response) and returns the builder.
func (b *B) Op(proc int, op string, arg, ret Value) *B {
	return b.Inv(proc, op, arg).Res(proc, op, ret)
}

// Word returns the built word.
func (b *B) Word() Word { return b.w }
