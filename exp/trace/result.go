package trace

// Verdict is a value a monitor process reports in Line 06 of the generic
// algorithm (Figure 1 of the paper).
type Verdict uint8

const (
	// Yes reports the behaviour is (still) considered correct.
	Yes Verdict = iota + 1
	// No reports a violation.
	No
	// Maybe reports insufficient information (three-valued monitors, §7).
	Maybe
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case Yes:
		return "YES"
	case No:
		return "NO"
	case Maybe:
		return "MAYBE"
	default:
		return "verdict(?)"
	}
}

// Result is the outcome of a monitored execution.
type Result struct {
	// History is the input word x(E): all send/receive events in real-time
	// order as recorded by the service.
	History Word
	// Verdicts holds each process's reported values in report order.
	Verdicts [][]Verdict
	// Responses holds each process's received responses (with views when the
	// service is timed), for sketch reconstruction.
	Responses [][]Response
	// Invs holds each process's sent invocations, aligned with Responses.
	Invs [][]Symbol
	// StepAt records the global scheduler step at which each verdict was
	// reported, aligned with Verdicts.
	StepAt [][]int
	// PulledAt records how many source symbols the adversary had consumed
	// when each verdict was reported (0 when the service does not track it).
	PulledAt [][]int
	// HistAt records the length of the exhibited history x(E) when each
	// verdict was reported, aligned with Verdicts (0 when the service does
	// not expose HistLen). History[:HistAt[p][k]] is exactly the input-word
	// prefix process p's k-th verdict judges — the comparison surface that
	// lets offline oracles be evaluated verdict by verdict.
	HistAt [][]int
	// Steps is the number of scheduler steps taken.
	Steps int
	// Drained reports that the run ended because every actor parked or
	// exited (the service's behaviour script or workload was exhausted)
	// rather than by hitting the step bound. Offline oracles that reason
	// about the *final* verdicts ("the last check saw every operation") are
	// only meaningful on drained runs — a step-bound cutoff can land between
	// a response and the verdict that judges it. Always false under a custom
	// Drive loop, which owns its own termination.
	Drained bool
}

// Procs returns the number of monitor processes; part of core.Stats.
func (r *Result) Procs() int { return len(r.Verdicts) }

// NOCount returns how many times process p reported NO.
func (r *Result) NOCount(p int) int {
	n := 0
	for _, v := range r.Verdicts[p] {
		if v == No {
			n++
		}
	}
	return n
}

// TotalNO returns the number of NO reports across all processes.
func (r *Result) TotalNO() int {
	t := 0
	for p := range r.Verdicts {
		t += r.NOCount(p)
	}
	return t
}

// NOInTail reports whether process p reported NO among its last window
// reports. Finite-run proxy for "reports NO infinitely often".
func (r *Result) NOInTail(p, window int) bool {
	v := r.Verdicts[p]
	start := len(v) - window
	if start < 0 {
		start = 0
	}
	for _, d := range v[start:] {
		if d == No {
			return true
		}
	}
	return false
}

// Triples reassembles the sketch triples observed by process p (or by all
// processes when p < 0) from a run against a timed service. Responses
// without views (untimed services) are skipped.
func (r *Result) Triples(p int) []Triple {
	var out []Triple
	for i := range r.Responses {
		if p >= 0 && i != p {
			continue
		}
		for k, resp := range r.Responses[i] {
			if resp.View == nil {
				continue
			}
			out = append(out, Triple{
				ID:   resp.ID,
				Inv:  r.Invs[i][k],
				Res:  resp.Sym,
				View: *resp.View,
			})
		}
	}
	return out
}

// Sketch builds the global sketch x~(E) from all processes' observations of
// a run against a timed service, using resolve to recover the invocation
// symbol of operations that appear in views but never responded (typically
// the timed adversary's InvAt method).
func (r *Result) Sketch(n int, resolve Resolver) (Word, error) {
	return BuildSketch(n, r.Triples(-1), resolve)
}
