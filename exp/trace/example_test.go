package trace_test

import (
	"bytes"
	"fmt"

	"github.com/drv-go/drv/exp/trace"
)

// ExampleB builds a small concurrent history with the fluent builder: two
// overlapping register operations.
func ExampleB() {
	w := trace.NewB().
		Inv(0, "write", trace.Int(3)). // p0 starts write(3)
		Inv(1, "read", nil).           // p1's read overlaps it
		Res(0, "write", trace.Unit{}).
		Res(1, "read", trace.Int(3)).
		Word()
	fmt.Println(w)
	fmt.Println("well-formed:", trace.IsWellFormed(w))
	// Output:
	// <0:write(3) <1:read() >0:write=() >1:read=3
	// well-formed: true
}

// ExampleOperations pairs the matched invocation/response events of a
// history and inspects the real-time precedence relation.
func ExampleOperations() {
	w := trace.NewB().
		Op(0, "enq", trace.Int(1), trace.Unit{}). // completes first
		Inv(1, "deq", nil).
		Res(1, "deq", trace.Int(1)).
		Word()
	ops := trace.Operations(w)
	for _, o := range ops {
		fmt.Println(o)
	}
	fmt.Println("enq precedes deq:", ops[0].Precedes(ops[1]))
	// Output:
	// p0#0 enq(1)=() [0,1]
	// p1#0 deq()=1 [2,3]
	// enq precedes deq: true
}

// ExampleSeqValid checks a sequential history against the queue
// specification.
func ExampleSeqValid() {
	q := trace.Queue()
	good := trace.NewB().
		Op(0, "enq", trace.Int(7), trace.Unit{}).
		Op(0, "deq", nil, trace.Int(7)).
		Word()
	bad := trace.NewB().
		Op(0, "enq", trace.Int(7), trace.Unit{}).
		Op(0, "deq", nil, trace.Int(8)).
		Word()
	fmt.Println(trace.SeqValid(q, trace.Operations(good)))
	fmt.Println(trace.SeqValid(q, trace.Operations(bad)))
	// Output:
	// true
	// false
}

// ExampleWriter streams a history and a verdict over the JSON-lines wire
// format and parses it back.
func ExampleWriter() {
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	w.WriteMeta(trace.Meta{N: 2, Note: "example"})
	w.WriteWord(trace.NewB().Op(0, "inc", nil, trace.Unit{}).Word())
	w.WriteVerdict(1, "YES", 42)
	w.Flush()

	parsed, err := trace.Read(&buf)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("n:", parsed.Meta.N)
	fmt.Println("word:", parsed.Word)
	fmt.Println("verdicts of p1:", parsed.Verdicts[1])
	// Output:
	// n: 2
	// word: <0:inc() >0:inc=()
	// verdicts of p1: [YES]
}
