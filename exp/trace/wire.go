package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Reader sizing for Read. Promoted to exported constants so embedders that
// stream oversized traces know (and can check against) the line-length bound
// instead of rediscovering a hard-coded scanner limit.
const (
	// ReadBufferSize is the initial scanner buffer capacity used by Read.
	ReadBufferSize = 64 * 1024
	// ReadMaxLineBytes is the maximum length of a single trace line Read
	// accepts before failing with bufio.ErrTooLong.
	ReadMaxLineBytes = 16 * 1024 * 1024
)

// EventKind tags a trace line.
type EventKind string

// The event kinds of the format. A trace starts with one Meta line, followed
// by Sym and Verdict lines in the order they occurred.
const (
	// KindMeta is the header line: process count, language, ground truth.
	KindMeta EventKind = "meta"
	// KindSym is one symbol of the input word x(E).
	KindSym EventKind = "sym"
	// KindVerdict is one reported verdict of a monitor process.
	KindVerdict EventKind = "verdict"
)

// Meta is the trace header.
type Meta struct {
	// N is the number of processes in the distributed alphabet.
	N int `json:"n"`
	// Lang names the distributed language the trace was generated against
	// (e.g. "WEC_COUNT"); empty for free-form traces.
	Lang string `json:"lang,omitempty"`
	// Member is the generator's ground-truth membership label for the ω-word
	// the trace is a prefix of. Nil when unknown.
	Member *bool `json:"member,omitempty"`
	// Seed is the generator seed, for reproducibility.
	Seed int64 `json:"seed,omitempty"`
	// Note is free-form provenance.
	Note string `json:"note,omitempty"`
}

// Event is one line of a trace file.
type Event struct {
	Kind EventKind `json:"kind"`

	// Meta fields (kind == "meta").
	Meta *Meta `json:"meta,omitempty"`

	// Symbol fields (kind == "sym").
	Proc int        `json:"proc,omitempty"`
	Sym  string     `json:"sym,omitempty"` // "inv" or "res"
	Op   string     `json:"op,omitempty"`
	Val  *WireValue `json:"val,omitempty"`

	// Verdict fields (kind == "verdict"). Proc is shared with symbols.
	Verdict string `json:"verdict,omitempty"`
	Step    int    `json:"step,omitempty"`
}

// WireValue is the JSON encoding of a Value: a type tag plus payload. The
// paper's alphabets are possibly infinite, so values are structured rather
// than enumerated; the tag set mirrors the Value implementations (Unit, Int,
// Rec, Seq).
type WireValue struct {
	T   string   `json:"t"`             // "unit" | "int" | "rec" | "seq"
	Int int64    `json:"int,omitempty"` // t == "int"
	Str string   `json:"str,omitempty"` // t == "rec"
	Seq []string `json:"seq,omitempty"` // t == "seq"
}

// EncodeValue converts a Value to its trace representation. A nil value
// encodes to nil.
func EncodeValue(v Value) (*WireValue, error) {
	switch x := v.(type) {
	case nil:
		return nil, nil
	case Unit:
		return &WireValue{T: "unit"}, nil
	case Int:
		return &WireValue{T: "int", Int: int64(x)}, nil
	case Rec:
		return &WireValue{T: "rec", Str: string(x)}, nil
	case Seq:
		// Canonical empty encoding: a nil Seq slice, so an empty sequence —
		// whether the Go value is Seq(nil) or Seq{} — always produces the
		// same WireValue representation and the same {"t":"seq"} line.
		if len(x) == 0 {
			return &WireValue{T: "seq"}, nil
		}
		seq := make([]string, len(x))
		for i, r := range x {
			seq[i] = string(r)
		}
		return &WireValue{T: "seq", Seq: seq}, nil
	default:
		return nil, fmt.Errorf("trace: cannot encode value of type %T", v)
	}
}

// DecodeValue converts a trace representation back to a Value. A nil
// input decodes to nil.
func DecodeValue(v *WireValue) (Value, error) {
	if v == nil {
		return nil, nil
	}
	switch v.T {
	case "unit":
		return Unit{}, nil
	case "int":
		return Int(v.Int), nil
	case "rec":
		return Rec(v.Str), nil
	case "seq":
		// All wire spellings of an empty sequence — {"t":"seq"},
		// {"t":"seq","seq":null}, {"t":"seq","seq":[]} — decode to the
		// canonical non-nil Seq{}, which re-encodes to {"t":"seq"}.
		seq := make(Seq, len(v.Seq))
		for i, s := range v.Seq {
			seq[i] = Rec(s)
		}
		return seq, nil
	default:
		return nil, fmt.Errorf("trace: unknown value tag %q", v.T)
	}
}

// EncodeSymbol converts a Symbol to a trace event.
func EncodeSymbol(s Symbol) (Event, error) {
	val, err := EncodeValue(s.Val)
	if err != nil {
		return Event{}, err
	}
	kind := "inv"
	if s.Kind == Res {
		kind = "res"
	}
	return Event{Kind: KindSym, Proc: s.Proc, Sym: kind, Op: s.Op, Val: val}, nil
}

// DecodeSymbol converts a trace event back to a Symbol.
func DecodeSymbol(e Event) (Symbol, error) {
	if e.Kind != KindSym {
		return Symbol{}, fmt.Errorf("trace: event kind %q is not a symbol", e.Kind)
	}
	val, err := DecodeValue(e.Val)
	if err != nil {
		return Symbol{}, err
	}
	var k Kind
	switch e.Sym {
	case "inv":
		k = Inv
	case "res":
		k = Res
	default:
		return Symbol{}, fmt.Errorf("trace: unknown symbol kind %q", e.Sym)
	}
	return Symbol{Proc: e.Proc, Kind: k, Op: e.Op, Val: val}, nil
}

// Writer streams trace events to an underlying writer, one JSON object per
// line.
type Writer struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewWriter wraps w in a trace writer.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{bw: bw, enc: json.NewEncoder(bw)}
}

// WriteMeta emits the header line. Call once, first.
func (w *Writer) WriteMeta(m Meta) error {
	return w.enc.Encode(Event{Kind: KindMeta, Meta: &m})
}

// WriteSymbol emits one input-word symbol.
func (w *Writer) WriteSymbol(s Symbol) error {
	e, err := EncodeSymbol(s)
	if err != nil {
		return err
	}
	return w.enc.Encode(e)
}

// WriteWord emits every symbol of a word in order.
func (w *Writer) WriteWord(ww Word) error {
	for _, s := range ww {
		if err := w.WriteSymbol(s); err != nil {
			return err
		}
	}
	return nil
}

// WriteVerdict emits one verdict report of process p at the given scheduler
// step. The verdict string is the monitor package's rendering (YES, NO,
// MAYBE).
func (w *Writer) WriteVerdict(p int, verdict string, step int) error {
	return w.enc.Encode(Event{Kind: KindVerdict, Proc: p, Verdict: verdict, Step: step})
}

// Flush writes buffered lines through to the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Trace is a fully parsed trace file.
type Trace struct {
	Meta Meta
	// Word is the input word: all symbol events in order.
	Word Word
	// Verdicts holds verdict strings per process, in report order.
	Verdicts map[int][]string
	// Steps holds the scheduler step of each verdict, aligned with Verdicts.
	Steps map[int][]int
}

// ErrMissingMeta is wrapped by Read when a trace has no meta header line.
var ErrMissingMeta = errors.New("missing meta header line")

// Read parses a whole trace stream. The format is strict about its header:
// the first non-blank line must be the one meta line — a trace with no meta,
// a duplicate meta, or a meta in mid-stream is rejected with the offending
// line number rather than silently resolved last-meta-wins. A line longer
// than ReadMaxLineBytes fails with an error that wraps bufio.ErrTooLong and
// reports the line it occurred on.
func Read(r io.Reader) (*Trace, error) {
	t := &Trace{
		Verdicts: map[int][]string{},
		Steps:    map[int][]int{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, ReadBufferSize), ReadMaxLineBytes)
	line := 0
	metaLine := 0 // line number of the meta header, 0 while unseen
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		switch e.Kind {
		case KindMeta:
			if metaLine != 0 {
				// Covers both the literal duplicate and the mid-stream meta:
				// a meta after symbols or verdicts necessarily follows the
				// header (events before any meta are rejected below).
				return nil, fmt.Errorf("trace: line %d: duplicate meta line (header is at line %d)", line, metaLine)
			}
			if e.Meta == nil {
				return nil, fmt.Errorf("trace: line %d: meta line carries no meta object", line)
			}
			t.Meta = *e.Meta
			metaLine = line
		case KindSym:
			if metaLine == 0 {
				return nil, fmt.Errorf("trace: line %d: symbol line before the meta header: %w", line, ErrMissingMeta)
			}
			s, err := DecodeSymbol(e)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", line, err)
			}
			t.Word = append(t.Word, s)
		case KindVerdict:
			if metaLine == 0 {
				return nil, fmt.Errorf("trace: line %d: verdict line before the meta header: %w", line, ErrMissingMeta)
			}
			t.Verdicts[e.Proc] = append(t.Verdicts[e.Proc], e.Verdict)
			t.Steps[e.Proc] = append(t.Steps[e.Proc], e.Step)
		default:
			return nil, fmt.Errorf("trace: line %d: unknown event kind %q", line, e.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, fmt.Errorf("trace: line %d: line exceeds ReadMaxLineBytes (%d): %w", line+1, ReadMaxLineBytes, err)
		}
		return nil, fmt.Errorf("trace: %w", err)
	}
	if metaLine == 0 {
		return nil, fmt.Errorf("trace: %w", ErrMissingMeta)
	}
	return t, nil
}
