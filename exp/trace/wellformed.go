package trace

import (
	"errors"
	"fmt"
)

// ErrNotWellFormed is wrapped by all well-formedness violations reported by
// WellFormed, so callers can match with errors.Is.
var ErrNotWellFormed = errors.New("word is not well-formed")

// WellFormed checks the finite-prefix portion of Definition 2.1 on a word:
// sequentiality — every local word w|i alternates invocation and response
// symbols starting with an invocation, and every response names the same
// operation as the invocation it closes. The reliability and fairness clauses
// of the definition constrain infinite words only; for the finite prefixes
// handled here every prefix of a well-formed ω-word passes this check.
func WellFormed(w Word) error {
	type pend struct {
		op  string
		pos int
	}
	open := map[int]*pend{}
	for i, s := range w {
		switch s.Kind {
		case Inv:
			if p, dup := open[s.Proc]; dup {
				return fmt.Errorf("%w: process %d invokes %q at position %d while %q from position %d is pending",
					ErrNotWellFormed, s.Proc, s.Op, i, p.op, p.pos)
			}
			open[s.Proc] = &pend{op: s.Op, pos: i}
		case Res:
			p, ok := open[s.Proc]
			if !ok {
				return fmt.Errorf("%w: process %d responds %q at position %d with no pending invocation",
					ErrNotWellFormed, s.Proc, s.Op, i)
			}
			if p.op != s.Op {
				return fmt.Errorf("%w: process %d response %q at position %d does not match pending invocation %q",
					ErrNotWellFormed, s.Proc, s.Op, i, p.op)
			}
			delete(open, s.Proc)
		default:
			return fmt.Errorf("%w: symbol at position %d has invalid kind %d", ErrNotWellFormed, i, s.Kind)
		}
	}
	return nil
}

// IsWellFormed reports whether WellFormed returns nil.
func IsWellFormed(w Word) bool { return WellFormed(w) == nil }
