package trace

import "fmt"

// OpID names an operation uniquely within a word: the Idx-th operation of
// process Proc (0-based within the local word w|Proc). The paper assumes each
// invocation symbol is sent at most once, "alternatively, each invocation
// symbol could be marked with its position to make it unique" — OpID is that
// marking.
type OpID struct {
	Proc int
	Idx  int
}

// String renders the identifier as "p<proc>#<idx>".
func (id OpID) String() string { return fmt.Sprintf("p%d#%d", id.Proc, id.Idx) }

// Operation is a matched invocation/response pair of a process in a word, or
// a pending invocation whose response has not appeared yet (Resp < 0).
type Operation struct {
	ID  OpID
	Op  string
	Arg Value // argument of the invocation
	Ret Value // return value; nil while pending
	Inv int   // index of the invocation symbol in the word
	Res int   // index of the response symbol, or -1 if pending
}

// Pending reports whether the operation has no response in the word.
func (o Operation) Pending() bool { return o.Res < 0 }

// String renders the operation, e.g. "p0#2 read=3 [5,8]" or a pending
// "p1#0 write(7) [2,-]".
func (o Operation) String() string {
	arg := ""
	if o.Arg != nil {
		arg = o.Arg.String()
	}
	if o.Pending() {
		return fmt.Sprintf("%s %s(%s) [%d,-]", o.ID, o.Op, arg, o.Inv)
	}
	return fmt.Sprintf("%s %s(%s)=%s [%d,%d]", o.ID, o.Op, arg, o.Ret, o.Inv, o.Res)
}

// Precedes reports the real-time precedence op ≺ op′ of Section 2: the
// response of o appears before the invocation of p. Pending operations
// precede nothing.
func (o Operation) Precedes(p Operation) bool {
	return !o.Pending() && o.Res < p.Inv
}

// ConcurrentWith reports op || op′: neither precedes the other.
func (o Operation) ConcurrentWith(p Operation) bool {
	return !o.Precedes(p) && !p.Precedes(o)
}

// Operations extracts the operations of a well-formed word, in invocation
// order. Each invocation is matched with the next symbol of the same process,
// which by sequentiality is its response; trailing unmatched invocations are
// returned as pending. It is the caller's responsibility to pass a word that
// satisfies per-process alternation (see WellFormed); Operations panics on
// words that put a response before any invocation of the same process, since
// such input indicates a bug in the experiment driver rather than a property
// to report.
func Operations(w Word) []Operation {
	var ops []Operation
	open := map[int]int{}  // proc -> index into ops of its pending operation
	count := map[int]int{} // proc -> number of operations started
	for i, s := range w {
		switch s.Kind {
		case Inv:
			if _, dup := open[s.Proc]; dup {
				panic(fmt.Sprintf("word: process %d invokes %q at position %d with an operation still pending", s.Proc, s.Op, i))
			}
			ops = append(ops, Operation{
				ID:  OpID{Proc: s.Proc, Idx: count[s.Proc]},
				Op:  s.Op,
				Arg: s.Val,
				Inv: i,
				Res: -1,
			})
			open[s.Proc] = len(ops) - 1
			count[s.Proc]++
		case Res:
			j, ok := open[s.Proc]
			if !ok {
				panic(fmt.Sprintf("word: process %d responds %q at position %d with no pending invocation", s.Proc, s.Op, i))
			}
			if ops[j].Op != s.Op {
				panic(fmt.Sprintf("word: process %d response %q at position %d does not match pending invocation %q", s.Proc, s.Op, i, ops[j].Op))
			}
			ops[j].Ret = s.Val
			ops[j].Res = i
			delete(open, s.Proc)
		default:
			panic(fmt.Sprintf("word: symbol at position %d has invalid kind %d", i, s.Kind))
		}
	}
	return ops
}

// Complete returns the operations of w that have both symbols present.
func Complete(w Word) []Operation {
	var out []Operation
	for _, o := range Operations(w) {
		if !o.Pending() {
			out = append(out, o)
		}
	}
	return out
}

// PendingOps returns the operations of w whose response is missing.
func PendingOps(w Word) []Operation {
	var out []Operation
	for _, o := range Operations(w) {
		if o.Pending() {
			out = append(out, o)
		}
	}
	return out
}

// TruncateComplete returns the word with all pending invocations removed:
// the history of only the complete operations, preserving symbol order.
func TruncateComplete(w Word) Word {
	drop := map[int]bool{}
	for _, o := range Operations(w) {
		if o.Pending() {
			drop[o.Inv] = true
		}
	}
	out := make(Word, 0, len(w))
	for i, s := range w {
		if !drop[i] {
			out = append(out, s)
		}
	}
	return out
}
