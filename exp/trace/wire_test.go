package trace_test

import (
	"bufio"
	"errors"
	"reflect"
	"strings"
	"testing"

	"github.com/drv-go/drv/exp/trace"
)

// TestReadErrorPaths table-tests the hostile inputs the wire format must
// reject, pinning that each error names the offending line.
func TestReadErrorPaths(t *testing.T) {
	meta := `{"kind":"meta","meta":{"n":2}}`
	sym := `{"kind":"sym","proc":0,"sym":"inv","op":"inc"}`
	tests := []struct {
		name string
		in   string
		want string // substring the error must contain
		is   error  // optional sentinel the error must wrap
	}{
		{
			name: "garbage JSON",
			in:   meta + "\n{not json}\n",
			want: "line 2",
		},
		{
			name: "unknown kind",
			in:   meta + "\n" + `{"kind":"wat"}` + "\n",
			want: `line 2: unknown event kind "wat"`,
		},
		{
			name: "unknown value tag",
			in:   meta + "\n" + `{"kind":"sym","proc":0,"sym":"inv","op":"inc","val":{"t":"blob"}}` + "\n",
			want: `line 2: trace: unknown value tag "blob"`,
		},
		{
			name: "unknown symbol kind",
			in:   meta + "\n" + `{"kind":"sym","proc":0,"sym":"bogus","op":"inc"}` + "\n",
			want: `line 2: trace: unknown symbol kind "bogus"`,
		},
		{
			name: "empty trace",
			in:   "",
			want: "missing meta header",
			is:   trace.ErrMissingMeta,
		},
		{
			name: "symbol before meta",
			in:   sym + "\n" + meta + "\n",
			want: "line 1: symbol line before the meta header",
			is:   trace.ErrMissingMeta,
		},
		{
			name: "verdict before meta",
			in:   `{"kind":"verdict","proc":0,"verdict":"YES","step":3}` + "\n" + meta + "\n",
			want: "line 1: verdict line before the meta header",
			is:   trace.ErrMissingMeta,
		},
		{
			name: "duplicate meta",
			in:   meta + "\n" + meta + "\n",
			want: "line 2: duplicate meta line (header is at line 1)",
		},
		{
			name: "mid-stream meta",
			in:   meta + "\n" + sym + "\n" + meta + "\n",
			want: "line 3: duplicate meta line (header is at line 1)",
		},
		{
			name: "meta line without meta object",
			in:   `{"kind":"meta"}` + "\n",
			want: "line 1: meta line carries no meta object",
		},
		{
			name: "too-long line",
			in:   meta + "\n" + `{"kind":"sym","op":"` + strings.Repeat("x", trace.ReadMaxLineBytes+1) + `"}` + "\n",
			want: "line 2: line exceeds ReadMaxLineBytes",
			is:   bufio.ErrTooLong,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := trace.Read(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("Read accepted %q", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
			if tc.is != nil && !errors.Is(err, tc.is) {
				t.Fatalf("error %q does not wrap %v", err, tc.is)
			}
		})
	}
}

// TestEmptySeqCanonical pins the canonical wire representation of empty and
// nested-empty sequence values: Encode∘Decode is the identity on the wire
// form, and both Seq(nil) and Seq{} encode to the same line.
func TestEmptySeqCanonical(t *testing.T) {
	encNil, err := trace.EncodeValue(trace.Seq(nil))
	if err != nil {
		t.Fatal(err)
	}
	encEmpty, err := trace.EncodeValue(trace.Seq{})
	if err != nil {
		t.Fatal(err)
	}
	canonical := &trace.WireValue{T: "seq"}
	if !reflect.DeepEqual(encNil, canonical) || !reflect.DeepEqual(encEmpty, canonical) {
		t.Fatalf("empty-seq encodings not canonical: nil→%+v empty→%+v", encNil, encEmpty)
	}
	for _, wire := range []*trace.WireValue{
		{T: "seq"},
		{T: "seq", Seq: []string{}},
	} {
		v, err := trace.DecodeValue(wire)
		if err != nil {
			t.Fatal(err)
		}
		s, ok := v.(trace.Seq)
		if !ok || s == nil || len(s) != 0 {
			t.Fatalf("decode %+v = %#v, want canonical non-nil empty Seq", wire, v)
		}
		back, err := trace.EncodeValue(v)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(back, canonical) {
			t.Fatalf("Encode(Decode(%+v)) = %+v, want %+v", wire, back, canonical)
		}
	}
	// Nested-empty: empty records inside a non-empty sequence round-trip
	// exactly.
	nested := trace.Seq{"", "x", ""}
	enc, err := trace.EncodeValue(nested)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := trace.DecodeValue(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, nested) {
		t.Fatalf("nested-empty round trip changed %#v into %#v", nested, dec)
	}
	again, err := trace.EncodeValue(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, enc) {
		t.Fatalf("nested-empty re-encoding drifted: %+v vs %+v", enc, again)
	}
}
